package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 || e.Fired() != 0 {
		t.Fatalf("fresh engine has pending=%d fired=%d", e.Pending(), e.Fired())
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("final clock %v, want 3", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events fired out of FIFO order: %v", order)
		}
	}
}

func TestScheduleFromHandler(t *testing.T) {
	e := NewEngine()
	var times []float64
	var rec func()
	n := 0
	rec = func() {
		times = append(times, e.Now())
		n++
		if n < 4 {
			e.Schedule(2, rec)
		}
	}
	e.Schedule(1, rec)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5, 7}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("double Cancel returned true")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var fired []int
	evs := make([]*Event, 20)
	for i := range evs {
		i := i
		evs[i] = e.Schedule(float64(20-i), func() { fired = append(fired, i) })
	}
	// Cancel every third event.
	for i := 0; i < len(evs); i += 3 {
		e.Cancel(evs[i])
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, id := range fired {
		if id%3 == 0 {
			t.Fatalf("cancelled event %d fired", id)
		}
	}
	if len(fired) != 13 {
		t.Fatalf("fired %d events, want 13", len(fired))
	}
}

func TestReschedule(t *testing.T) {
	e := NewEngine()
	var at float64 = -1
	ev := e.Schedule(1, func() { at = e.Now() })
	e.Reschedule(ev, 5)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5 {
		t.Fatalf("rescheduled event fired at %v, want 5", at)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, d := range []float64{1, 2, 3, 10} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	if err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %v, want first three", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want horizon 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 10 || len(fired) != 4 {
		t.Fatalf("resume failed: now=%v fired=%v", e.Now(), fired)
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(float64(i+1), func() {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("halt did not stop dispatch: count=%d", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending=%d after halt, want 7", e.Pending())
	}
}

func TestEventLimit(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(100)
	var loop func()
	loop = func() { e.Schedule(1, loop) }
	e.Schedule(1, loop)
	if err := e.Run(); err != ErrEventLimit {
		t.Fatalf("Run = %v, want ErrEventLimit", err)
	}
}

func TestScheduleNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(-1) did not panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestScheduleNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(NaN) did not panic")
		}
	}()
	NewEngine().Schedule(math.NaN(), func() {})
}

// Property: for any batch of non-negative delays, events fire in sorted
// order and the final clock equals the maximum delay.
func TestEventOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine()
		var fired []float64
		for _, r := range raw {
			d := float64(r) / 8
			e.Schedule(d, func() { fired = append(fired, d) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		want := make([]float64, len(raw))
		for i, r := range raw {
			want[i] = float64(r) / 8
		}
		sort.Float64s(want)
		return e.Now() == want[len(want)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(float64(j%97), func() {})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
