package sim

// Ticker invokes a callback at a fixed virtual-time period until stopped.
// NWS sensors and load generators use it for periodic sampling.
type Ticker struct {
	eng    *Engine
	period float64
	fn     func(now float64)
	ev     *Event
	stop   bool
	ticks  uint64
	max    uint64 // 0 = unbounded
}

// NewTicker schedules fn every period seconds starting period seconds from
// now. period must be positive.
func NewTicker(eng *Engine, period float64, fn func(now float64)) *Ticker {
	if period <= 0 {
		panic("sim: Ticker period must be positive")
	}
	t := &Ticker{eng: eng, period: period, fn: fn}
	t.arm()
	return t
}

// NewTickerN is NewTicker limited to max firings.
func NewTickerN(eng *Engine, period float64, max uint64, fn func(now float64)) *Ticker {
	t := NewTicker(eng, period, fn)
	t.max = max
	return t
}

func (t *Ticker) arm() {
	t.ev = t.eng.Schedule(t.period, t.fire)
}

func (t *Ticker) fire() {
	if t.stop {
		return
	}
	t.ticks++
	t.fn(t.eng.Now())
	if t.stop || (t.max > 0 && t.ticks >= t.max) {
		return
	}
	t.arm()
}

// Stop prevents any further firings.
func (t *Ticker) Stop() {
	t.stop = true
	if t.ev != nil {
		t.eng.Cancel(t.ev)
	}
}

// Ticks reports how many times the callback has fired.
func (t *Ticker) Ticks() uint64 { return t.ticks }
