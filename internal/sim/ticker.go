package sim

// Ticker invokes a callback at a fixed virtual-time period until stopped.
// NWS sensors and load generators use it for periodic sampling.
type Ticker struct {
	eng    *Engine
	period float64
	fn     func(now float64)
	ev     *Event
	stop   bool
	ticks  uint64
	max    uint64 // 0 = unbounded
}

// NewTicker schedules fn every period seconds starting period seconds from
// now. period must be positive.
func NewTicker(eng *Engine, period float64, fn func(now float64)) *Ticker {
	if period <= 0 {
		panic("sim: Ticker period must be positive")
	}
	t := &Ticker{eng: eng, period: period, fn: fn}
	t.arm()
	return t
}

// NewTickerN is NewTicker limited to max firings.
func NewTickerN(eng *Engine, period float64, max uint64, fn func(now float64)) *Ticker {
	t := NewTicker(eng, period, fn)
	t.max = max
	return t
}

func (t *Ticker) arm() {
	t.ev = t.eng.Schedule(t.period, t.fire)
}

func (t *Ticker) fire() {
	if t.stop {
		return
	}
	t.ticks++
	t.fn(t.eng.Now())
	if t.stop || (t.max > 0 && t.ticks >= t.max) {
		return
	}
	t.arm()
}

// Stop prevents any further firings.
func (t *Ticker) Stop() {
	t.stop = true
	if t.ev != nil {
		t.eng.Cancel(t.ev)
	}
}

// Ticks reports how many times the callback has fired.
func (t *Ticker) Ticks() uint64 { return t.ticks }

// BatchTicker fans one periodic timer event out to many callbacks:
// registering another callback costs no additional engine events, so a
// service watching thousands of resources schedules O(1) heap events per
// period instead of O(resources). Callbacks run in registration order,
// which keeps simulations deterministic.
type BatchTicker struct {
	t      *Ticker
	fns    []func(now float64)
	around func(fire func(now float64), now float64)
}

// NewBatchTicker schedules the batch every period seconds starting period
// seconds from now. period must be positive.
func NewBatchTicker(eng *Engine, period float64) *BatchTicker {
	b := &BatchTicker{}
	b.t = NewTicker(eng, period, b.Fire)
	return b
}

// Add registers a callback on the shared cadence. A callback added
// mid-flight first runs at the next batch tick.
func (b *BatchTicker) Add(fn func(now float64)) { b.fns = append(b.fns, fn) }

// SetAround installs a wrapper invoked around every Fire — timer-driven
// or direct — with the sweep closure to run. It must call fire exactly
// once; observability layers use it to time a whole sweep without
// paying a per-callback hook. nil removes the wrapper.
func (b *BatchTicker) SetAround(around func(fire func(now float64), now float64)) {
	b.around = around
}

// Fire invokes every registered callback once, in registration order. The
// ticker calls it on each period; tests and benchmarks may call it
// directly to drive a sweep without advancing the clock.
func (b *BatchTicker) Fire(now float64) {
	if b.around != nil {
		b.around(b.fireAll, now)
		return
	}
	b.fireAll(now)
}

func (b *BatchTicker) fireAll(now float64) {
	for _, fn := range b.fns {
		fn(now)
	}
}

// Len reports how many callbacks are registered.
func (b *BatchTicker) Len() int { return len(b.fns) }

// Ticks reports how many times the batch has fired on the timer.
func (b *BatchTicker) Ticks() uint64 { return b.t.Ticks() }

// Stop prevents any further timer firings.
func (b *BatchTicker) Stop() { b.t.Stop() }
