package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"apples/internal/obs"
)

// Handler is the callback invoked when an event fires. It runs with the
// engine clock set to the event's time.
type Handler func()

// Event is a scheduled callback. It is returned by Schedule/ScheduleAt so
// callers can cancel it before it fires.
type Event struct {
	time    float64
	seq     uint64 // FIFO tie-breaker for simultaneous events
	index   int    // position in the heap, -1 when not queued
	handler Handler
}

// Time returns the virtual time at which the event fires (or fired).
func (e *Event) Time() float64 { return e.time }

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now    float64
	seq    uint64
	queue  eventQueue
	fired  uint64
	limit  uint64 // safety cap on total events; 0 means none
	halted bool
	events *obs.Counter // sim_events_total; nil when metrics are off
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Fired reports how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but not yet fired.
func (e *Engine) Pending() int { return e.queue.Len() }

// SetEventLimit installs a safety cap on the total number of dispatched
// events. Run returns ErrEventLimit once the cap is exceeded. Zero disables
// the cap.
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// SetMetrics registers the engine's sim_events_total counter in the
// registry, incremented once per dispatched event. A nil registry turns
// the instrumentation off again (the default: one nil check per Step).
func (e *Engine) SetMetrics(m *obs.Metrics) {
	if m == nil {
		e.events = nil
		return
	}
	e.events = m.Counter(obs.MetricSimEvents)
}

// ErrEventLimit is returned by Run when the engine's event cap is hit. It
// almost always indicates a scheduling loop in the model.
var ErrEventLimit = errors.New("sim: event limit exceeded")

// Schedule queues fn to run delay seconds from now. A negative or NaN delay
// panics: the model attempted to schedule into the past.
func (e *Engine) Schedule(delay float64, fn Handler) *Event {
	if math.IsNaN(delay) || delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v at t=%v", delay, e.now))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute virtual time t. Scheduling before
// the current time panics.
func (e *Engine) ScheduleAt(t float64, fn Handler) *Event {
	if math.IsNaN(t) || t < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt %v before now %v", t, e.now))
	}
	ev := &Event{time: t, seq: e.seq, handler: fn, index: -1}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a scheduled event. It reports whether the event was still
// pending (false if it already fired or was cancelled).
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	ev.handler = nil
	return true
}

// Reschedule cancels ev (if pending) and schedules its handler delay seconds
// from now, returning the new event. The old pointer becomes invalid.
func (e *Engine) Reschedule(ev *Event, delay float64) *Event {
	h := ev.handler
	e.Cancel(ev)
	if h == nil {
		panic("sim: Reschedule of fired event")
	}
	return e.Schedule(delay, h)
}

// Step dispatches the single earliest pending event, advancing the clock to
// its time. It reports false when no events are pending.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	ev.index = -1
	e.now = ev.time
	e.fired++
	if e.events != nil {
		e.events.Inc()
	}
	h := ev.handler
	ev.handler = nil
	h()
	return true
}

// Run dispatches events until the queue drains or Halt is called. It returns
// ErrEventLimit if the safety cap is exceeded.
func (e *Engine) Run() error {
	return e.RunUntil(math.Inf(1))
}

// RunUntil dispatches events with time <= horizon. Events beyond the horizon
// stay queued; the clock is advanced to the horizon if the run was not
// halted early and the horizon is finite.
func (e *Engine) RunUntil(horizon float64) error {
	e.halted = false
	for e.queue.Len() > 0 && !e.halted {
		if e.queue.peek().time > horizon {
			break
		}
		if e.limit > 0 && e.fired >= e.limit {
			return ErrEventLimit
		}
		e.Step()
	}
	if !e.halted && !math.IsInf(horizon, 1) && horizon > e.now {
		e.now = horizon
	}
	return nil
}

// Halt stops Run/RunUntil after the currently dispatching event returns.
func (e *Engine) Halt() { e.halted = true }
