package sim

// eventQueue is a binary heap of events ordered by (time, seq). The seq
// tie-break keeps same-instant events in FIFO order, which is what makes the
// engine deterministic.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

func (q eventQueue) peek() *Event { return q[0] }
