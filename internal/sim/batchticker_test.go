package sim

import "testing"

func TestBatchTickerFansOutInOrder(t *testing.T) {
	e := NewEngine()
	b := NewBatchTicker(e, 2)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		b.Add(func(now float64) { order = append(order, i) })
	}
	if err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	b.Stop()
	want := []int{0, 1, 2, 0, 1, 2} // ticks at t=2 and t=4
	if len(order) != len(want) {
		t.Fatalf("callback order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("callback order %v, want %v", order, want)
		}
	}
	if b.Ticks() != 2 {
		t.Fatalf("Ticks() = %d, want 2", b.Ticks())
	}
}

// One batch costs the engine one event per period no matter how many
// callbacks are registered — the whole point of batching sensors.
func TestBatchTickerSchedulesOneEventPerPeriod(t *testing.T) {
	e := NewEngine()
	b := NewBatchTicker(e, 1)
	for i := 0; i < 100; i++ {
		b.Add(func(now float64) {})
	}
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	b.Stop()
	// Ticks at t=1..10; each period fires exactly one engine event
	// regardless of callback count.
	if e.Fired() != b.Ticks() {
		t.Fatalf("engine fired %d events for %d batch ticks; batching must cost one event per period",
			e.Fired(), b.Ticks())
	}
	if b.Ticks() != 10 {
		t.Fatalf("Ticks() = %d, want 10", b.Ticks())
	}
}

func TestBatchTickerFireDirect(t *testing.T) {
	e := NewEngine()
	b := NewBatchTicker(e, 1)
	sum := 0.0
	b.Add(func(now float64) { sum += now })
	b.Fire(7)
	b.Fire(8)
	if sum != 15 {
		t.Fatalf("direct Fire saw times summing to %v, want 15", sum)
	}
	if b.Ticks() != 0 {
		t.Fatalf("direct Fire must not count timer ticks, got %d", b.Ticks())
	}
	if b.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", b.Len())
	}
}

func TestBatchTickerAddMidFlight(t *testing.T) {
	e := NewEngine()
	b := NewBatchTicker(e, 1)
	count := 0
	b.Add(func(now float64) {
		if now == 2 {
			b.Add(func(float64) { count++ })
		}
	})
	if err := e.RunUntil(4.5); err != nil {
		t.Fatal(err)
	}
	b.Stop()
	if count != 2 { // late callback runs at t=3 and t=4
		t.Fatalf("late-added callback fired %d times, want 2", count)
	}
}

// TestBatchTickerSetAround: the around hook wraps one whole batch fire —
// it runs once per tick, observes the fire time, and brackets every
// callback in the sweep.
func TestBatchTickerSetAround(t *testing.T) {
	e := NewEngine()
	b := NewBatchTicker(e, 1)
	var log []string
	for i := 0; i < 3; i++ {
		b.Add(func(now float64) { log = append(log, "cb") })
	}
	var times []float64
	b.SetAround(func(fire func(float64), now float64) {
		log = append(log, "pre")
		times = append(times, now)
		fire(now)
		log = append(log, "post")
	})
	if err := e.RunUntil(2.5); err != nil {
		t.Fatal(err)
	}
	b.Stop()
	want := []string{"pre", "cb", "cb", "cb", "post", "pre", "cb", "cb", "cb", "post"}
	if len(log) != len(want) {
		t.Fatalf("around bracket sequence %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("around bracket sequence %v, want %v", log, want)
		}
	}
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("around saw fire times %v, want [1 2]", times)
	}

	// Clearing the hook restores the direct path.
	b.SetAround(nil)
	log = log[:0]
	b.Fire(9)
	if len(log) != 3 || log[0] != "cb" {
		t.Fatalf("after SetAround(nil): %v, want three bare callbacks", log)
	}
}
