package sim

import (
	"math"
	"testing"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	a := NewRand(7)
	c1 := a.Fork()
	// Fork consumed parent state; a fresh parent forks the same child.
	b := NewRand(7)
	c2 := b.Fork()
	for i := 0; i < 100; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatalf("forked streams not reproducible at draw %d", i)
		}
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRand(1)
	for i := 0; i < 10000; i++ {
		v := g.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	g := NewRand(3)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exp(4)
	}
	mean := sum / n
	if math.Abs(mean-4) > 0.1 {
		t.Fatalf("Exp(4) sample mean %v, want ~4", mean)
	}
	if g.Exp(0) != 0 || g.Exp(-1) != 0 {
		t.Fatal("Exp with non-positive mean should be 0")
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRand(9)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := g.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("Normal stddev %v, want ~2", math.Sqrt(variance))
	}
}

func TestParetoLowerBound(t *testing.T) {
	g := NewRand(11)
	for i := 0; i < 10000; i++ {
		if v := g.Pareto(1.5, 2); v < 1.5 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	g := NewRand(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRand(17)
	p := g.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}
