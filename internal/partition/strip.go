package partition

import (
	"fmt"
	"math"
)

// HostCost is the Planner's per-host parameterization of the paper's strip
// cost model T_i = A_i*P_i + C_i.
type HostCost struct {
	Host string
	// SecPerPoint is P_i: forecast seconds to compute one grid point
	// (base per-point cost divided by forecast availability).
	SecPerPoint float64
	// CommSec is C_i: forecast seconds per iteration to send and receive
	// the host's strip borders.
	CommSec float64
	// MaxPoints caps the strip by host memory (0 = unbounded).
	MaxPoints float64
}

// stripFromRows assembles a strip Placement from per-host row counts,
// dropping zero-row hosts and wiring neighbor borders. Strips are
// contiguous row bands in the order given; each interior boundary
// exchanges n*borderBytesPerPoint bytes each way per iteration.
func stripFromRows(n int, hosts []string, rows []int, borderBytesPerPoint float64) *Placement {
	p := &Placement{N: n, Kind: "strip"}
	type live struct {
		host string
		rows int
	}
	bands := make([]live, 0, len(hosts))
	for i, h := range hosts {
		if rows[i] > 0 {
			bands = append(bands, live{h, rows[i]})
		}
	}
	edge := float64(n) * borderBytesPerPoint
	p.Assignments = make([]Assignment, 0, len(bands))
	for i, b := range bands {
		a := Assignment{Host: b.host, Rows: b.rows, Points: b.rows * n}
		if i > 0 || i < len(bands)-1 {
			a.Borders = make([]Border, 0, 2)
		}
		if i > 0 {
			a.Borders = append(a.Borders, Border{Peer: bands[i-1].host, Bytes: edge})
		}
		if i < len(bands)-1 {
			a.Borders = append(a.Borders, Border{Peer: bands[i+1].host, Bytes: edge})
		}
		p.Assignments = append(p.Assignments, a)
	}
	return p
}

// UniformStrip splits the n x n domain into equal row bands across hosts.
func UniformStrip(n int, hosts []string, borderBytesPerPoint float64) (*Placement, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("partition: no hosts")
	}
	if n < len(hosts) {
		return nil, fmt.Errorf("partition: %d rows cannot cover %d hosts", n, len(hosts))
	}
	w := make([]float64, len(hosts))
	for i := range w {
		w[i] = 1
	}
	rows := largestRemainder(w, n)
	return stripFromRows(n, hosts, rows, borderBytesPerPoint), nil
}

// WeightedStrip assigns row bands proportional to the given weights — the
// paper's static "Non-uniform Strip" partition (Figure 4), computed at
// compile time from dedicated CPU speeds (optionally discounted by
// dedicated link bandwidth, which is folded into the weights by the
// caller).
func WeightedStrip(n int, hosts []string, weights []float64, borderBytesPerPoint float64) (*Placement, error) {
	if len(hosts) == 0 || len(hosts) != len(weights) {
		return nil, fmt.Errorf("partition: hosts/weights mismatch (%d vs %d)", len(hosts), len(weights))
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("partition: negative weight")
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("partition: all weights zero")
	}
	rows := largestRemainder(weights, n)
	return stripFromRows(n, hosts, rows, borderBytesPerPoint), nil
}

// TimeBalanced solves the paper's cost model for the strip areas that
// equalize per-iteration completion time across hosts:
//
//	T_i = A_i*P_i + C_i  ->  A_i = (T - C_i)/P_i,  sum A_i = n^2
//
// Hosts whose balanced share would be negative (too slow or too expensive
// to reach) are dropped and the system re-solved; hosts whose share would
// exceed their memory capacity are clamped to it and the remainder
// redistributed (this is what lets Figure 6's AppLeS schedule overflow the
// SP-2 gracefully instead of spilling).
//
// It returns the placement, the predicted per-iteration time, and an error
// when no feasible assignment exists. If the aggregate memory of all hosts
// cannot hold the domain, capacity constraints are relaxed in proportion —
// the schedule will spill, but it remains balanced.
func TimeBalanced(n int, costs []HostCost, borderBytesPerPoint float64) (*Placement, float64, error) {
	if len(costs) == 0 {
		return nil, 0, fmt.Errorf("partition: no hosts")
	}
	for _, c := range costs {
		if c.SecPerPoint <= 0 {
			return nil, 0, fmt.Errorf("partition: host %s has non-positive P_i", c.Host)
		}
		if c.CommSec < 0 {
			return nil, 0, fmt.Errorf("partition: host %s has negative C_i", c.Host)
		}
	}
	total := float64(n) * float64(n)

	// Relax capacities when the whole pool cannot hold the domain.
	capTotal, unbounded := 0.0, false
	for _, c := range costs {
		if c.MaxPoints <= 0 {
			unbounded = true
			break
		}
		capTotal += c.MaxPoints
	}
	relaxed := make([]HostCost, len(costs))
	copy(relaxed, costs)
	if !unbounded && capTotal < total {
		scale := total / capTotal
		for i := range relaxed {
			relaxed[i].MaxPoints *= scale * 1.0001 // headroom for rounding
		}
	}

	area := make([]float64, len(relaxed))
	state := make([]int, len(relaxed)) // 0 active, 1 dropped, 2 capped
	remaining := total
	for iter := 0; iter < 4*len(relaxed)+4; iter++ {
		sumInvP, sumCoverP := 0.0, 0.0
		active := 0
		for i, c := range relaxed {
			if state[i] != 0 {
				continue
			}
			active++
			sumInvP += 1 / c.SecPerPoint
			sumCoverP += c.CommSec / c.SecPerPoint
		}
		if active == 0 {
			break
		}
		T := (remaining + sumCoverP) / sumInvP
		worstNeg, worstNegIdx := 0.0, -1
		worstOver, worstOverIdx := 0.0, -1
		for i, c := range relaxed {
			if state[i] != 0 {
				continue
			}
			a := (T - c.CommSec) / c.SecPerPoint
			area[i] = a
			if a < 0 && a < worstNeg {
				worstNeg, worstNegIdx = a, i
			}
			if c.MaxPoints > 0 && a > c.MaxPoints {
				if over := a - c.MaxPoints; over > worstOver {
					worstOver, worstOverIdx = over, i
				}
			}
		}
		if worstNegIdx >= 0 {
			// Too slow to be worth its communication cost: drop it.
			state[worstNegIdx] = 1
			area[worstNegIdx] = 0
			continue
		}
		if worstOverIdx >= 0 {
			// Memory-capped: pin at capacity and redistribute the rest.
			state[worstOverIdx] = 2
			area[worstOverIdx] = relaxed[worstOverIdx].MaxPoints
			remaining -= relaxed[worstOverIdx].MaxPoints
			continue
		}
		// Converged.
		hosts := make([]string, len(relaxed))
		for i, c := range relaxed {
			hosts[i] = c.Host
		}
		rows := largestRemainder(area, n)
		p := stripFromRows(n, hosts, rows, borderBytesPerPoint)
		if p.TotalPoints() != n*n {
			return nil, 0, fmt.Errorf("partition: internal rounding error")
		}
		if len(p.Assignments) == 0 {
			return nil, 0, fmt.Errorf("partition: every host dropped")
		}
		return p, T, nil
	}
	return nil, 0, fmt.Errorf("partition: time-balance solve did not converge")
}

// PredictStripTime evaluates the cost model for an existing strip
// placement: the predicted per-iteration time is max_i (A_i*P_i + C_i)
// over hosts with work. Hosts absent from costs are assumed infinitely
// slow (returns +Inf), which penalizes schedules using unknown machines.
func PredictStripTime(p *Placement, costs []HostCost) float64 {
	byHost := map[string]HostCost{}
	for _, c := range costs {
		byHost[c.Host] = c
	}
	worst := 0.0
	for _, a := range p.Assignments {
		if a.Points == 0 {
			continue
		}
		c, ok := byHost[a.Host]
		if !ok {
			return math.Inf(1)
		}
		t := float64(a.Points)*c.SecPerPoint + c.CommSec
		if t > worst {
			worst = t
		}
	}
	return worst
}
