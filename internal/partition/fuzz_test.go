package partition

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadPlacement feeds arbitrary bytes to the placement decoder. The
// decoder must never panic; when it accepts an input, the placement must
// satisfy Validate (ReadPlacement promises validated output) and survive
// an encode/decode round trip unchanged — the property the
// -save-schedule / -load-schedule CLI pair depends on.
func FuzzReadPlacement(f *testing.F) {
	// A real 2x2 strip placement, the smallest interesting accept case.
	f.Add([]byte(`{"N":2,"Kind":"strip","Assignments":[` +
		`{"Host":"a","Points":2,"Rows":1,"Borders":[{"Peer":"b","Bytes":16}]},` +
		`{"Host":"b","Points":2,"Rows":1,"Borders":[{"Peer":"a","Bytes":16}]}]}`))
	// Single-host placement, no borders.
	f.Add([]byte(`{"N":3,"Kind":"strip","Assignments":[{"Host":"solo","Points":9,"Rows":3}]}`))
	// Rejection seeds: malformed JSON, bad invariants, wrong shapes.
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"N":-1}`))
	f.Add([]byte(`{"N":2,"Assignments":[{"Host":"a","Points":3}]}`))
	f.Add([]byte(`{"N":1,"Assignments":[{"Host":"a","Points":1},{"Host":"a","Points":0}]}`))
	f.Add([]byte(`{"N":1,"Assignments":[{"Host":"a","Points":1,"Borders":[{"Peer":"ghost","Bytes":1}]}]}`))
	f.Add([]byte(`{"N":1e99}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPlacement(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ReadPlacement accepted an invalid placement: %v\ninput: %q", err, data)
		}
		var buf bytes.Buffer
		if _, err := p.WriteTo(&buf); err != nil {
			t.Fatalf("accepted placement failed to re-encode: %v", err)
		}
		p2, err := ReadPlacement(&buf)
		if err != nil {
			t.Fatalf("re-encoded placement failed to decode: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip changed the placement:\n was %+v\n now %+v", p, p2)
		}
	})
}
