package partition

import (
	"bytes"
	"strings"
	"testing"
)

func TestPlacementJSONRoundTrip(t *testing.T) {
	p, _, err := TimeBalanced(100, []HostCost{
		{Host: "a", SecPerPoint: 1e-6, CommSec: 0.01},
		{Host: "b", SecPerPoint: 2e-6, CommSec: 0.02},
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlacement(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != p.N || back.Kind != p.Kind || back.TotalPoints() != p.TotalPoints() {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, p)
	}
	for i := range p.Assignments {
		if back.Assignments[i].Host != p.Assignments[i].Host ||
			back.Assignments[i].Points != p.Assignments[i].Points {
			t.Fatalf("assignment %d mismatch", i)
		}
	}
}

func TestReadPlacementRejectsCorrupt(t *testing.T) {
	if _, err := ReadPlacement(strings.NewReader("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid JSON, invalid placement (points don't cover N^2).
	bad := `{"N":10,"Kind":"strip","Assignments":[{"Host":"a","Points":5,"Rows":1}]}`
	if _, err := ReadPlacement(strings.NewReader(bad)); err == nil {
		t.Fatal("invalid placement accepted")
	}
}
