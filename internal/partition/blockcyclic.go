package partition

import "fmt"

// BlockCyclic builds the HPF CYCLIC(k) row distribution: row blocks of
// height k dealt round-robin to hosts. For a synchronous stencil code it
// is usually a poor choice — every internal block boundary is a border
// exchange, so communication grows with n/k — which makes it a useful
// extra baseline: a plausible compile-time distribution whose cost
// structure differs from both blocked and strip.
func BlockCyclic(n int, hosts []string, blockRows int, borderBytesPerPoint float64) (*Placement, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("partition: no hosts")
	}
	if blockRows < 1 {
		return nil, fmt.Errorf("partition: block height %d < 1", blockRows)
	}
	if n < 1 {
		return nil, fmt.Errorf("partition: empty domain")
	}

	// Deal row blocks round-robin.
	type block struct{ owner int }
	var blocks []block
	for start := 0; start < n; start += blockRows {
		blocks = append(blocks, block{owner: (start / blockRows) % len(hosts)})
	}
	rowsOf := make([]int, len(hosts))
	for i, b := range blocks {
		h := b.owner
		rows := blockRows
		if (i+1)*blockRows > n {
			rows = n - i*blockRows
		}
		rowsOf[h] += rows
	}

	// Border bytes between adjacent blocks with different owners.
	edge := float64(n) * borderBytesPerPoint
	borderBytes := make(map[[2]int]float64) // ordered host-index pair -> bytes
	for i := 0; i+1 < len(blocks); i++ {
		a, b := blocks[i].owner, blocks[i+1].owner
		if a == b {
			continue
		}
		borderBytes[[2]int{a, b}] += edge
		borderBytes[[2]int{b, a}] += edge
	}

	p := &Placement{N: n, Kind: "block-cyclic"}
	for hi, host := range hosts {
		if rowsOf[hi] == 0 {
			continue
		}
		a := Assignment{Host: host, Rows: rowsOf[hi], Points: rowsOf[hi] * n}
		for hj, peer := range hosts {
			if hj == hi {
				continue
			}
			if bytes := borderBytes[[2]int{hi, hj}]; bytes > 0 {
				a.Borders = append(a.Borders, Border{Peer: peer, Bytes: bytes})
			}
		}
		p.Assignments = append(p.Assignments, a)
	}
	if p.TotalPoints() != n*n {
		return nil, fmt.Errorf("partition: block-cyclic internal error: %d points", p.TotalPoints())
	}
	return p, nil
}
