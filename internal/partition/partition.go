// Package partition implements the data decompositions compared in the
// paper's Jacobi2D experiments:
//
//   - the AppLeS time-balanced non-uniform strip partition (Figure 3),
//     which equalizes T_i = A_i*P_i + C_i across heterogeneous, loaded
//     processors and respects per-host memory capacity;
//   - the static non-uniform strip partition parameterized only by CPU
//     speeds (Figure 4);
//   - the HPF-style uniform blocked partition (the compile-time baseline
//     in Figures 5 and 6);
//   - a uniform strip partition.
//
// A Placement abstracts the geometry away from the execution engine: each
// assignment carries its point count, memory need, and per-neighbor border
// traffic, which is all the simulated Jacobi run requires.
package partition

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Border is one communication edge of an assignment: Bytes are sent to and
// received from Peer on every iteration.
type Border struct {
	Peer  string
	Bytes float64
}

// Assignment is one host's share of the domain.
type Assignment struct {
	Host    string
	Points  int      // grid points owned
	Rows    int      // strip rows (0 for non-strip decompositions)
	Borders []Border // per-iteration exchanges
}

// Placement is a complete mapping of the N x N domain onto hosts.
type Placement struct {
	N           int
	Kind        string // "strip", "blocked"
	Assignments []Assignment
}

// TotalPoints sums the points across assignments.
func (p *Placement) TotalPoints() int {
	total := 0
	for _, a := range p.Assignments {
		total += a.Points
	}
	return total
}

// Hosts returns the host names carrying non-zero work, in placement order.
func (p *Placement) Hosts() []string {
	var out []string
	for _, a := range p.Assignments {
		if a.Points > 0 {
			out = append(out, a.Host)
		}
	}
	return out
}

// Fraction returns the share of the domain assigned to host (0 when
// absent).
func (p *Placement) Fraction(host string) float64 {
	n2 := float64(p.N) * float64(p.N)
	for _, a := range p.Assignments {
		if a.Host == host {
			return float64(a.Points) / n2
		}
	}
	return 0
}

// Validate checks the placement invariants: points sum to N^2, no negative
// shares, borders reference hosts in the placement, border symmetry.
func (p *Placement) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("partition: non-positive N %d", p.N)
	}
	if got, want := p.TotalPoints(), p.N*p.N; got != want {
		return fmt.Errorf("partition: points sum to %d, want %d", got, want)
	}
	idx := map[string]*Assignment{}
	for i := range p.Assignments {
		a := &p.Assignments[i]
		if a.Points < 0 || a.Rows < 0 {
			return fmt.Errorf("partition: negative share on %s", a.Host)
		}
		if _, dup := idx[a.Host]; dup {
			return fmt.Errorf("partition: host %s appears twice", a.Host)
		}
		idx[a.Host] = a
	}
	for _, a := range p.Assignments {
		for _, b := range a.Borders {
			peer, ok := idx[b.Peer]
			if !ok {
				return fmt.Errorf("partition: %s borders unknown host %s", a.Host, b.Peer)
			}
			if b.Bytes < 0 {
				return fmt.Errorf("partition: negative border bytes %s->%s", a.Host, b.Peer)
			}
			found := false
			for _, bb := range peer.Borders {
				if bb.Peer == a.Host && bb.Bytes == b.Bytes {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("partition: asymmetric border %s<->%s", a.Host, b.Peer)
			}
		}
	}
	return nil
}

// String renders the placement as a compact per-host share table.
func (p *Placement) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s partition of %dx%d:", p.Kind, p.N, p.N)
	for _, a := range p.Assignments {
		fmt.Fprintf(&sb, " %s=%.1f%%", a.Host, 100*p.Fraction(a.Host))
	}
	return sb.String()
}

// largestRemainder apportions total units proportionally to weights,
// guaranteeing the exact total and non-negative integer shares
// (Hamilton's method). Zero or negative weights get zero.
func largestRemainder(weights []float64, total int) []int {
	n := len(weights)
	out := make([]int, n)
	sum := 0.0
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	if sum == 0 || total <= 0 {
		return out
	}
	type frac struct {
		idx int
		rem float64
	}
	assigned := 0
	fracs := make([]frac, 0, n)
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		exact := float64(total) * w / sum
		fl := math.Floor(exact)
		out[i] = int(fl)
		assigned += int(fl)
		fracs = append(fracs, frac{i, exact - fl})
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].rem != fracs[b].rem {
			return fracs[a].rem > fracs[b].rem
		}
		return fracs[a].idx < fracs[b].idx
	})
	for k := 0; assigned < total && k < len(fracs); k++ {
		out[fracs[k].idx]++
		assigned++
	}
	// Degenerate rounding shortfall (all remainders zero): dump on the
	// largest weight.
	for assigned < total {
		best := 0
		for i := range weights {
			if weights[i] > weights[best] {
				best = i
			}
		}
		out[best]++
		assigned++
	}
	return out
}
