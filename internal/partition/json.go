package partition

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteTo serializes the placement as JSON, so a chosen schedule can be
// stored, inspected, or replayed later (the placement struct is already
// plain data).
func (p *Placement) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(p, "", " ")
	if err != nil {
		return 0, fmt.Errorf("partition: encode placement: %w", err)
	}
	n, err := w.Write(data)
	return int64(n), err
}

// ReadPlacement deserializes and validates a placement written by
// WriteTo.
func ReadPlacement(r io.Reader) (*Placement, error) {
	var p Placement
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("partition: decode placement: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}
