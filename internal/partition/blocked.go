package partition

import (
	"fmt"
	"math"
)

// Blocked builds the HPF-style Uniform/Blocked partition: the domain is
// cut into an r x c grid of equal 2D blocks, one per host, with r*c =
// len(hosts) chosen as the most balanced factorization. Every host gets
// the same area regardless of its speed or load — exactly the
// compile-time baseline the paper compares against in Figures 5 and 6.
func Blocked(n int, hosts []string, borderBytesPerPoint float64) (*Placement, error) {
	p := len(hosts)
	if p == 0 {
		return nil, fmt.Errorf("partition: no hosts")
	}
	r, c := balancedFactors(p)
	if n < r || n < c {
		return nil, fmt.Errorf("partition: %dx%d grid cannot cover %dx%d blocks", n, n, r, c)
	}

	rowHeights := evenCut(n, r)
	colWidths := evenCut(n, c)

	place := &Placement{N: n, Kind: "blocked"}
	idx := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			h := hosts[idx(i, j)]
			a := Assignment{
				Host:   h,
				Points: rowHeights[i] * colWidths[j],
			}
			// Borders: shared edges with the four neighbors.
			if i > 0 {
				a.Borders = append(a.Borders, Border{Peer: hosts[idx(i-1, j)], Bytes: float64(colWidths[j]) * borderBytesPerPoint})
			}
			if i < r-1 {
				a.Borders = append(a.Borders, Border{Peer: hosts[idx(i+1, j)], Bytes: float64(colWidths[j]) * borderBytesPerPoint})
			}
			if j > 0 {
				a.Borders = append(a.Borders, Border{Peer: hosts[idx(i, j-1)], Bytes: float64(rowHeights[i]) * borderBytesPerPoint})
			}
			if j < c-1 {
				a.Borders = append(a.Borders, Border{Peer: hosts[idx(i, j+1)], Bytes: float64(rowHeights[i]) * borderBytesPerPoint})
			}
			place.Assignments = append(place.Assignments, a)
		}
	}
	return place, nil
}

// balancedFactors returns the factor pair (r, c) of p with r <= c and the
// smallest difference — the squarest process grid.
func balancedFactors(p int) (int, int) {
	best := 1
	for f := 1; f*f <= p; f++ {
		if p%f == 0 {
			best = f
		}
	}
	return best, p / best
}

// evenCut splits n into k near-equal positive integers summing to n.
func evenCut(n, k int) []int {
	out := make([]int, k)
	base := n / k
	extra := n % k
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out
}

// BlockedPredictTime evaluates the cost model on a blocked placement: the
// per-iteration time is max over hosts of points*P_i + C_i where C_i is
// derived from the host's border bytes and the per-host bandwidth estimate
// provided by the caller.
func BlockedPredictTime(p *Placement, secPerPoint map[string]float64, borderSec func(a Assignment) float64) float64 {
	worst := 0.0
	for _, a := range p.Assignments {
		sp, ok := secPerPoint[a.Host]
		if !ok {
			return math.Inf(1)
		}
		t := float64(a.Points)*sp + borderSec(a)
		if t > worst {
			worst = t
		}
	}
	return worst
}
