package partition

import (
	"testing"
	"testing/quick"
)

func TestBlockCyclicBasic(t *testing.T) {
	p, err := BlockCyclic(100, []string{"a", "b"}, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// 10 blocks of 10 rows dealt to 2 hosts: 50 rows each.
	for _, asg := range p.Assignments {
		if asg.Rows != 50 {
			t.Fatalf("%s has %d rows, want 50", asg.Host, asg.Rows)
		}
	}
	// Every internal boundary (9 of them) is an a<->b border: 9*100*8
	// bytes each way.
	for _, asg := range p.Assignments {
		total := 0.0
		for _, b := range asg.Borders {
			total += b.Bytes
		}
		if total != 9*100*8 {
			t.Fatalf("%s border bytes %v, want 7200", asg.Host, total)
		}
	}
}

func TestBlockCyclicRaggedTail(t *testing.T) {
	p, err := BlockCyclic(25, []string{"a", "b", "c"}, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TotalPoints() != 625 {
		t.Fatalf("points %d", p.TotalPoints())
	}
	// Blocks: rows 0-9 -> a, 10-19 -> b, 20-24 (5 rows) -> c.
	want := map[string]int{"a": 10, "b": 10, "c": 5}
	for _, asg := range p.Assignments {
		if asg.Rows != want[asg.Host] {
			t.Fatalf("%s rows %d, want %d", asg.Host, asg.Rows, want[asg.Host])
		}
	}
}

func TestBlockCyclicCommGrowsAsBlocksShrink(t *testing.T) {
	comm := func(blockRows int) float64 {
		p, err := BlockCyclic(120, []string{"a", "b", "c"}, blockRows, 8)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, asg := range p.Assignments {
			for _, b := range asg.Borders {
				total += b.Bytes
			}
		}
		return total
	}
	if comm(5) <= comm(40) {
		t.Fatalf("cyclic(5) comm %v should exceed cyclic(40) comm %v", comm(5), comm(40))
	}
}

func TestBlockCyclicErrors(t *testing.T) {
	if _, err := BlockCyclic(10, nil, 2, 8); err == nil {
		t.Fatal("no hosts accepted")
	}
	if _, err := BlockCyclic(10, []string{"a"}, 0, 8); err == nil {
		t.Fatal("zero block height accepted")
	}
	if _, err := BlockCyclic(0, []string{"a"}, 2, 8); err == nil {
		t.Fatal("empty domain accepted")
	}
}

// Property: block-cyclic placements always validate and cover the domain.
func TestBlockCyclicProperty(t *testing.T) {
	f := func(nRaw, kRaw, hRaw uint8) bool {
		n := 10 + int(nRaw)%120
		k := 1 + int(kRaw)%15
		nh := 1 + int(hRaw)%5
		hosts := make([]string, nh)
		for i := range hosts {
			hosts[i] = string(rune('a' + i))
		}
		p, err := BlockCyclic(n, hosts, k, 8)
		if err != nil {
			return false
		}
		return p.Validate() == nil && p.TotalPoints() == n*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
