package partition

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestUniformStrip(t *testing.T) {
	p, err := UniformStrip(100, []string{"a", "b", "c", "d"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, a := range p.Assignments {
		if a.Rows != 25 {
			t.Fatalf("uniform strip rows %d, want 25", a.Rows)
		}
	}
}

func TestUniformStripRemainder(t *testing.T) {
	p, err := UniformStrip(10, []string{"a", "b", "c"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	rows := []int{}
	for _, a := range p.Assignments {
		rows = append(rows, a.Rows)
	}
	sum := 0
	for _, r := range rows {
		sum += r
		if r < 3 || r > 4 {
			t.Fatalf("rows %v not near-uniform", rows)
		}
	}
	if sum != 10 {
		t.Fatalf("rows sum %d, want 10", sum)
	}
}

func TestStripBorderWiring(t *testing.T) {
	p, err := UniformStrip(90, []string{"a", "b", "c"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// End strips have one border, middle has two, each 90*8 bytes.
	for _, a := range p.Assignments {
		want := 2
		if a.Host == "a" || a.Host == "c" {
			want = 1
		}
		if len(a.Borders) != want {
			t.Fatalf("%s has %d borders, want %d", a.Host, len(a.Borders), want)
		}
		for _, b := range a.Borders {
			if b.Bytes != 720 {
				t.Fatalf("border bytes %v, want 720", b.Bytes)
			}
		}
	}
}

func TestWeightedStripProportional(t *testing.T) {
	p, err := WeightedStrip(100, []string{"fast", "slow"}, []float64{3, 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if f := p.Fraction("fast"); math.Abs(f-0.75) > 0.01 {
		t.Fatalf("fast fraction %v, want 0.75", f)
	}
}

func TestWeightedStripZeroWeightDropsHost(t *testing.T) {
	p, err := WeightedStrip(100, []string{"a", "b", "c"}, []float64{1, 0, 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Assignments) != 2 {
		t.Fatalf("zero-weight host kept: %v", p.Hosts())
	}
	// a and c become adjacent strips.
	if p.Assignments[0].Borders[0].Peer != "c" {
		t.Fatalf("borders not re-wired after drop: %+v", p.Assignments)
	}
}

func TestWeightedStripErrors(t *testing.T) {
	if _, err := WeightedStrip(10, []string{"a"}, []float64{1, 2}, 8); err == nil {
		t.Fatal("mismatched weights accepted")
	}
	if _, err := WeightedStrip(10, []string{"a"}, []float64{-1}, 8); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := WeightedStrip(10, []string{"a", "b"}, []float64{0, 0}, 8); err == nil {
		t.Fatal("all-zero weights accepted")
	}
}

func TestTimeBalancedEqualHosts(t *testing.T) {
	costs := []HostCost{
		{Host: "a", SecPerPoint: 1e-6, CommSec: 0.01},
		{Host: "b", SecPerPoint: 1e-6, CommSec: 0.01},
	}
	p, T, err := TimeBalanced(100, costs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Fraction("a")-0.5) > 0.01 {
		t.Fatalf("equal hosts got %v / %v", p.Fraction("a"), p.Fraction("b"))
	}
	// T = A*P + C = 5000*1e-6 + 0.01
	if math.Abs(T-0.015) > 1e-9 {
		t.Fatalf("predicted T %v, want 0.015", T)
	}
}

func TestTimeBalancedFavorsFastHost(t *testing.T) {
	costs := []HostCost{
		{Host: "fast", SecPerPoint: 1e-6, CommSec: 0.01},
		{Host: "slow", SecPerPoint: 4e-6, CommSec: 0.01},
	}
	p, _, err := TimeBalanced(200, costs, 8)
	if err != nil {
		t.Fatal(err)
	}
	ffast, fslow := p.Fraction("fast"), p.Fraction("slow")
	if math.Abs(ffast-0.8) > 0.02 || math.Abs(fslow-0.2) > 0.02 {
		t.Fatalf("fractions fast=%v slow=%v, want 0.8/0.2", ffast, fslow)
	}
}

func TestTimeBalancedDropsUselessHost(t *testing.T) {
	// Host c's communication cost alone exceeds the balanced time, so
	// including it would slow the application: it must be dropped.
	costs := []HostCost{
		{Host: "a", SecPerPoint: 1e-6, CommSec: 0.001},
		{Host: "b", SecPerPoint: 1e-6, CommSec: 0.001},
		{Host: "c", SecPerPoint: 1e-6, CommSec: 100},
	}
	p, _, err := TimeBalanced(100, costs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fraction("c") != 0 {
		t.Fatalf("expensive host kept with fraction %v", p.Fraction("c"))
	}
}

func TestTimeBalancedHonorsMemoryCap(t *testing.T) {
	costs := []HostCost{
		{Host: "big", SecPerPoint: 1e-6, CommSec: 0.001, MaxPoints: 3000},
		{Host: "small", SecPerPoint: 1e-6, CommSec: 0.001, MaxPoints: 1e9},
	}
	p, _, err := TimeBalanced(100, costs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range p.Assignments {
		if a.Host == "big" && a.Points > 3100 {
			t.Fatalf("cap violated: big has %d points", a.Points)
		}
	}
	if p.TotalPoints() != 10000 {
		t.Fatalf("total %d, want 10000", p.TotalPoints())
	}
}

func TestTimeBalancedRelaxesInfeasibleCaps(t *testing.T) {
	// Aggregate capacity (6000) < domain (10000): caps are scaled so the
	// domain still fits and the placement stays balanced.
	costs := []HostCost{
		{Host: "a", SecPerPoint: 1e-6, CommSec: 0, MaxPoints: 3000},
		{Host: "b", SecPerPoint: 1e-6, CommSec: 0, MaxPoints: 3000},
	}
	p, _, err := TimeBalanced(100, costs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalPoints() != 10000 {
		t.Fatalf("total %d, want 10000", p.TotalPoints())
	}
}

func TestTimeBalancedErrors(t *testing.T) {
	if _, _, err := TimeBalanced(10, nil, 8); err == nil {
		t.Fatal("empty costs accepted")
	}
	if _, _, err := TimeBalanced(10, []HostCost{{Host: "a", SecPerPoint: 0}}, 8); err == nil {
		t.Fatal("zero P_i accepted")
	}
	if _, _, err := TimeBalanced(10, []HostCost{{Host: "a", SecPerPoint: 1, CommSec: -1}}, 8); err == nil {
		t.Fatal("negative C_i accepted")
	}
}

func TestPredictStripTime(t *testing.T) {
	costs := []HostCost{
		{Host: "a", SecPerPoint: 1e-6, CommSec: 0.01},
		{Host: "b", SecPerPoint: 2e-6, CommSec: 0.02},
	}
	p, _ := UniformStrip(100, []string{"a", "b"}, 8)
	got := PredictStripTime(p, costs)
	want := 5000*2e-6 + 0.02 // b dominates
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("predicted %v, want %v", got, want)
	}
	if v := PredictStripTime(p, costs[:1]); !math.IsInf(v, 1) {
		t.Fatalf("unknown host predicted %v, want +Inf", v)
	}
}

func TestBlockedSquareFourHosts(t *testing.T) {
	p, err := Blocked(100, []string{"a", "b", "c", "d"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, a := range p.Assignments {
		if a.Points != 2500 {
			t.Fatalf("blocked 2x2 block has %d points, want 2500", a.Points)
		}
		if len(a.Borders) != 2 {
			t.Fatalf("corner block has %d borders, want 2", len(a.Borders))
		}
	}
}

func TestBlockedEightHosts(t *testing.T) {
	hosts := []string{"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"}
	p, err := Blocked(200, hosts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TotalPoints() != 40000 {
		t.Fatalf("total %d, want 40000", p.TotalPoints())
	}
	// 8 = 2x4 grid; every host has equal area.
	for _, a := range p.Assignments {
		if a.Points != 5000 {
			t.Fatalf("block %s has %d points, want 5000", a.Host, a.Points)
		}
	}
}

func TestBlockedPrimeCount(t *testing.T) {
	p, err := Blocked(105, []string{"a", "b", "c", "d", "e", "f", "g"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// 7 hosts -> 1x7 strips of columns.
	if p.TotalPoints() != 105*105 {
		t.Fatalf("total %d", p.TotalPoints())
	}
}

func TestBalancedFactors(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 4: {2, 2}, 8: {2, 4}, 12: {3, 4}, 7: {1, 7}, 36: {6, 6}}
	for p, want := range cases {
		r, c := balancedFactors(p)
		if r != want[0] || c != want[1] {
			t.Errorf("balancedFactors(%d) = %d,%d, want %v", p, r, c, want)
		}
	}
}

func TestPlacementString(t *testing.T) {
	p, _ := UniformStrip(10, []string{"a", "b"}, 8)
	s := p.String()
	if !strings.Contains(s, "strip") || !strings.Contains(s, "a=") {
		t.Fatalf("String() = %q", s)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p, _ := UniformStrip(10, []string{"a", "b"}, 8)
	p.Assignments[0].Points += 5
	if err := p.Validate(); err == nil {
		t.Fatal("points-sum corruption not caught")
	}
	p, _ = UniformStrip(10, []string{"a", "b"}, 8)
	p.Assignments[0].Borders[0].Bytes = 999
	if err := p.Validate(); err == nil {
		t.Fatal("asymmetric border not caught")
	}
}

// Property: for arbitrary positive costs, TimeBalanced covers the domain
// exactly, never assigns negative work, and used hosts' predicted times
// are within the discretization error of each other.
func TestTimeBalancedProperty(t *testing.T) {
	f := func(rawP [4]uint8, rawC [4]uint8) bool {
		n := 64
		costs := make([]HostCost, 4)
		for i := range costs {
			costs[i] = HostCost{
				Host:        string(rune('a' + i)),
				SecPerPoint: 1e-6 * (1 + float64(rawP[i]%50)),
				CommSec:     1e-4 * float64(rawC[i]%20),
			}
		}
		p, T, err := TimeBalanced(n, costs, 8)
		if err != nil {
			return false
		}
		if p.Validate() != nil {
			return false
		}
		if p.TotalPoints() != n*n {
			return false
		}
		// Each kept host's predicted time must not exceed T by more than
		// one row's worth of work.
		byHost := map[string]HostCost{}
		for _, c := range costs {
			byHost[c.Host] = c
		}
		for _, a := range p.Assignments {
			c := byHost[a.Host]
			ti := float64(a.Points)*c.SecPerPoint + c.CommSec
			slack := float64(n) * c.SecPerPoint // one row
			if ti > T+slack+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: largestRemainder always sums to the target with non-negative
// parts.
func TestLargestRemainderProperty(t *testing.T) {
	f := func(raw []uint8, totalRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		weights := make([]float64, len(raw))
		anyPos := false
		for i, r := range raw {
			weights[i] = float64(r)
			if r > 0 {
				anyPos = true
			}
		}
		total := int(totalRaw % 5000)
		out := largestRemainder(weights, total)
		sum := 0
		for i, v := range out {
			if v < 0 {
				return false
			}
			if weights[i] == 0 && v != 0 {
				return false
			}
			sum += v
		}
		if !anyPos || total == 0 {
			return sum == 0
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTimeBalanced(b *testing.B) {
	costs := make([]HostCost, 10)
	for i := range costs {
		costs[i] = HostCost{
			Host:        string(rune('a' + i)),
			SecPerPoint: 1e-6 * float64(1+i),
			CommSec:     1e-3 * float64(i%3),
			MaxPoints:   4e5,
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := TimeBalanced(2000, costs, 8); err != nil {
			b.Fatal(err)
		}
	}
}
