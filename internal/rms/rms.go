package rms

import (
	"fmt"

	"apples/internal/grid"
)

// TaskID identifies a spawned task within its Machine (PVM's "tid").
type TaskID int

// Message is one delivered message.
type Message struct {
	From    TaskID
	Tag     int
	SizeMB  float64
	Payload any
}

// Machine is a PVM-style virtual machine configured over a topology.
type Machine struct {
	tp    *grid.Topology
	tasks map[TaskID]*Task
	next  TaskID
	alive int
}

// New builds an empty virtual machine over the topology.
func New(tp *grid.Topology) *Machine {
	return &Machine{tp: tp, tasks: make(map[TaskID]*Task), next: 1}
}

// Task is one spawned task. All methods must be called from the
// simulation's event context (task bodies and callbacks).
type Task struct {
	id       TaskID
	hostName string
	host     *grid.Host
	m        *Machine

	mailbox map[int][]Message
	waiting map[int][]func(Message)
	exited  bool
}

// Spawn starts a task on the named host; body runs immediately to
// register the task's initial behaviour. It returns the new task's ID.
func (m *Machine) Spawn(host string, body func(t *Task)) (TaskID, error) {
	h := m.tp.Host(host)
	if h == nil {
		return 0, fmt.Errorf("rms: spawn on unknown host %q", host)
	}
	t := &Task{
		id:       m.next,
		hostName: host,
		host:     h,
		m:        m,
		mailbox:  make(map[int][]Message),
		waiting:  make(map[int][]func(Message)),
	}
	m.next++
	m.tasks[t.id] = t
	m.alive++
	body(t)
	return t.id, nil
}

// Alive reports how many spawned tasks have not exited.
func (m *Machine) Alive() int { return m.alive }

// Task returns a live task by ID (nil if unknown or exited).
func (m *Machine) Task(id TaskID) *Task {
	t := m.tasks[id]
	if t == nil || t.exited {
		return nil
	}
	return t
}

// ID returns the task's identifier.
func (t *Task) ID() TaskID { return t.id }

// Host returns the host the task runs on.
func (t *Task) Host() string { return t.hostName }

// Compute performs mflop of work on the task's host (sharing the CPU
// with ambient load and every other task there), then calls then.
func (t *Task) Compute(mflop float64, then func()) {
	if t.exited {
		return
	}
	t.host.Submit(mflop, func() {
		if !t.exited && then != nil {
			then()
		}
	})
}

// Send transfers sizeMB to the destination task with the given tag; the
// message is delivered after the (contended) network transfer completes.
// Sends to exited or unknown tasks are dropped, as in PVM.
func (t *Task) Send(to TaskID, tag int, sizeMB float64, payload any) {
	dst := t.m.tasks[to]
	if dst == nil {
		return
	}
	msg := Message{From: t.id, Tag: tag, SizeMB: sizeMB, Payload: payload}
	t.m.tp.Send(t.hostName, dst.hostName, sizeMB, func() {
		dst.deliver(msg)
	})
}

// Recv registers a one-shot receive for the tag: the handler fires with
// the first matching message (immediately, if one is already queued).
func (t *Task) Recv(tag int, handler func(Message)) {
	if t.exited {
		return
	}
	if q := t.mailbox[tag]; len(q) > 0 {
		msg := q[0]
		t.mailbox[tag] = q[1:]
		handler(msg)
		return
	}
	t.waiting[tag] = append(t.waiting[tag], handler)
}

// RecvN collects n messages with the tag and then calls done with all of
// them (a gather).
func (t *Task) RecvN(tag, n int, done func([]Message)) {
	if n <= 0 {
		done(nil)
		return
	}
	collected := make([]Message, 0, n)
	var one func(Message)
	one = func(m Message) {
		collected = append(collected, m)
		if len(collected) == n {
			done(collected)
			return
		}
		t.Recv(tag, one)
	}
	t.Recv(tag, one)
}

// Exit terminates the task: pending receives are dropped and future
// messages to it are discarded.
func (t *Task) Exit() {
	if t.exited {
		return
	}
	t.exited = true
	t.waiting = make(map[int][]func(Message))
	t.m.alive--
}

func (t *Task) deliver(msg Message) {
	if t.exited {
		return
	}
	if q := t.waiting[msg.Tag]; len(q) > 0 {
		h := q[0]
		t.waiting[msg.Tag] = q[1:]
		h(msg)
		return
	}
	t.mailbox[msg.Tag] = append(t.mailbox[msg.Tag], msg)
}
