// Package rms is a PVM-flavored message-passing resource-management
// substrate over the simulated metacomputer.
//
// The paper is explicit that AppLeS agents "are not resource management
// systems; they rely on systems such as Globus, Legion, PVM, etc. to
// perform that function", and the 1996 prototype actuated through PVM.
// This package reproduces the relevant slice of that substrate: a virtual
// machine spanning the topology's hosts, task spawning, asynchronous
// typed-tag message passing with real network cost, and computation that
// shares each host's CPU with ambient load and other tasks.
//
// Tasks are event-driven (callback style, matching the simulation
// substrate): a task body registers its initial behaviour at spawn time
// and reacts to Compute completions and Recv deliveries.
//
// The AppLeS layer actuates through this package via
// core.ActuatorFromRMS / the facade's RMSActuator: the agent decides, the
// resource management system executes — the separation of concerns the
// paper's architecture diagram draws between the Coordinator's Actuator
// and the underlying RMS.
package rms
