package rms

import (
	"math"
	"testing"

	"apples/internal/grid"
	"apples/internal/load"
	"apples/internal/sim"
)

// lanTopology: four hosts on one dedicated LAN.
func lanTopology(eng *sim.Engine, speeds []float64, loads []load.Source) *grid.Topology {
	tp := grid.NewTopology(eng)
	l := tp.AddLink(grid.LinkSpec{Name: "lan", Latency: 0.001, Bandwidth: 10, Dedicated: true})
	for i, s := range speeds {
		name := string(rune('a' + i))
		var src load.Source
		if loads != nil {
			src = loads[i]
		}
		tp.AddHost(grid.HostSpec{Name: name, Speed: s, MemoryMB: 256, Load: src})
		tp.Attach(name, l)
	}
	tp.Finalize()
	return tp
}

func TestSpawnAndCompute(t *testing.T) {
	eng := sim.NewEngine()
	tp := lanTopology(eng, []float64{10, 10}, nil)
	m := New(tp)
	var doneAt float64
	id, err := m.Spawn("a", func(task *Task) {
		task.Compute(50, func() { doneAt = eng.Now() })
	})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 || m.Alive() != 1 {
		t.Fatalf("id=%d alive=%d", id, m.Alive())
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(doneAt-5) > 1e-9 {
		t.Fatalf("compute finished at %v, want 5", doneAt)
	}
}

func TestSpawnUnknownHost(t *testing.T) {
	eng := sim.NewEngine()
	tp := lanTopology(eng, []float64{10}, nil)
	if _, err := New(tp).Spawn("ghost", func(*Task) {}); err == nil {
		t.Fatal("spawn on unknown host accepted")
	}
}

func TestSendRecvPingPong(t *testing.T) {
	eng := sim.NewEngine()
	tp := lanTopology(eng, []float64{10, 10}, nil)
	m := New(tp)
	var finish float64
	var aTask *Task
	var bID TaskID
	_, err := m.Spawn("a", func(task *Task) {
		aTask = task
		task.Recv(7, func(msg Message) {
			finish = eng.Now()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	bID, err = m.Spawn("b", func(task *Task) {
		task.Recv(7, func(msg Message) {
			task.Send(msg.From, 7, 1, nil) // pong
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	aTask.Send(bID, 7, 1, "ping")
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Two hops: 2 * (1 ms latency + 1 MB / 10 MB/s) = 0.202 s.
	if math.Abs(finish-0.202) > 1e-9 {
		t.Fatalf("ping-pong took %v, want 0.202", finish)
	}
}

func TestRecvBeforeAndAfterDelivery(t *testing.T) {
	eng := sim.NewEngine()
	tp := lanTopology(eng, []float64{10, 10}, nil)
	m := New(tp)
	var got []int
	var recvTask *Task
	_, err := m.Spawn("a", func(task *Task) { recvTask = task })
	if err != nil {
		t.Fatal(err)
	}
	var sender *Task
	_, err = m.Spawn("b", func(task *Task) { sender = task })
	if err != nil {
		t.Fatal(err)
	}
	// Message arrives before any Recv is posted: it must queue.
	sender.Send(recvTask.ID(), 1, 0.001, 41)
	eng.Schedule(1, func() {
		recvTask.Recv(1, func(msg Message) { got = append(got, msg.Payload.(int)) })
		// And a Recv posted before the next message waits for it.
		recvTask.Recv(1, func(msg Message) { got = append(got, msg.Payload.(int)) })
		sender.Send(recvTask.ID(), 1, 0.001, 42)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 41 || got[1] != 42 {
		t.Fatalf("got %v, want [41 42]", got)
	}
}

func TestTagsDoNotCross(t *testing.T) {
	eng := sim.NewEngine()
	tp := lanTopology(eng, []float64{10, 10}, nil)
	m := New(tp)
	var tag2Payload any
	var recvTask *Task
	m.Spawn("a", func(task *Task) {
		recvTask = task
		task.Recv(2, func(msg Message) { tag2Payload = msg.Payload })
	})
	var sender *Task
	m.Spawn("b", func(task *Task) { sender = task })
	sender.Send(recvTask.ID(), 1, 0.001, "one")
	sender.Send(recvTask.ID(), 2, 0.001, "two")
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if tag2Payload != "two" {
		t.Fatalf("tag-2 receive got %v", tag2Payload)
	}
}

func TestRecvNGathers(t *testing.T) {
	eng := sim.NewEngine()
	tp := lanTopology(eng, []float64{10, 10, 10, 10}, nil)
	m := New(tp)
	var gathered int
	var root *Task
	m.Spawn("a", func(task *Task) {
		root = task
		task.RecvN(5, 3, func(msgs []Message) { gathered = len(msgs) })
	})
	for _, h := range []string{"b", "c", "d"} {
		m.Spawn(h, func(task *Task) {
			task.Send(root.ID(), 5, 0.001, nil)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if gathered != 3 {
		t.Fatalf("gathered %d, want 3", gathered)
	}
}

func TestExitDropsTask(t *testing.T) {
	eng := sim.NewEngine()
	tp := lanTopology(eng, []float64{10, 10}, nil)
	m := New(tp)
	fired := false
	var victim *Task
	m.Spawn("a", func(task *Task) {
		victim = task
		task.Recv(1, func(Message) { fired = true })
	})
	var sender *Task
	m.Spawn("b", func(task *Task) { sender = task })
	victim.Exit()
	sender.Send(victim.ID(), 1, 0.001, nil)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("message delivered to exited task")
	}
	if m.Alive() != 1 {
		t.Fatalf("alive %d, want 1", m.Alive())
	}
	if m.Task(victim.ID()) != nil {
		t.Fatal("exited task still visible")
	}
}

func TestRingTime(t *testing.T) {
	eng := sim.NewEngine()
	tp := lanTopology(eng, []float64{10, 10, 10, 10}, nil)
	total, err := RunRing(tp, []string{"a", "b", "c", "d"}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 12 hops * (0.001 + 0.1) = 1.212 s.
	if math.Abs(total-1.212) > 1e-9 {
		t.Fatalf("ring took %v, want 1.212", total)
	}
}

func TestMasterWorkerBalancesByDeliverableSpeed(t *testing.T) {
	eng := sim.NewEngine()
	// Worker b is nominally as fast as c but crushed by load: the
	// self-scheduling farm must give it far fewer chunks.
	tp := lanTopology(eng, []float64{10, 40, 40},
		[]load.Source{nil, load.Constant(7), nil})
	res, err := RunMasterWorker(tp, "a", []string{"b", "c"}, 60, 20, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunksDone["b"]+res.ChunksDone["c"] != 60 {
		t.Fatalf("chunks %v", res.ChunksDone)
	}
	if res.ChunksDone["c"] < 4*res.ChunksDone["b"] {
		t.Fatalf("loaded worker got %d of 60 chunks, free worker %d: self-scheduling failed",
			res.ChunksDone["b"], res.ChunksDone["c"])
	}
	if res.Time <= 0 {
		t.Fatalf("time %v", res.Time)
	}
}

func TestMasterWorkerValidation(t *testing.T) {
	eng := sim.NewEngine()
	tp := lanTopology(eng, []float64{10, 10}, nil)
	if _, err := RunMasterWorker(tp, "a", nil, 10, 1, 0.1); err == nil {
		t.Fatal("no workers accepted")
	}
	if _, err := RunMasterWorker(tp, "a", []string{"b"}, 0, 1, 0.1); err == nil {
		t.Fatal("zero chunks accepted")
	}
}

func TestRingValidation(t *testing.T) {
	eng := sim.NewEngine()
	tp := lanTopology(eng, []float64{10, 10}, nil)
	if _, err := RunRing(tp, []string{"a"}, 1, 1); err == nil {
		t.Fatal("one-host ring accepted")
	}
}

func BenchmarkMasterWorker(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		tp := lanTopology(eng, []float64{10, 40, 40, 40}, nil)
		if _, err := RunMasterWorker(tp, "a", []string{"b", "c", "d"}, 100, 10, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}
