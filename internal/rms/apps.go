package rms

import (
	"fmt"
	"math"

	"apples/internal/grid"
)

// Tags used by the bundled collective patterns.
const (
	tagWork   = 100
	tagResult = 101
	tagToken  = 102
)

// MasterWorkerResult reports a completed farm run.
type MasterWorkerResult struct {
	Time       float64
	ChunksDone map[string]int // host -> chunks completed
}

// RunMasterWorker farms `chunks` independent work units (each chunkMflop
// of computation, with chunkMB of input shipped per unit and a small
// result returned) from a master host to worker hosts, self-scheduling
// style: each worker requests the next chunk when it finishes. This is
// the classic PVM pattern, and on heterogeneous loaded hosts it
// demonstrates why deliverable performance — not nominal speed — decides
// how many chunks each machine ends up with.
func RunMasterWorker(tp *grid.Topology, master string, workers []string, chunks int, chunkMflop, chunkMB float64) (*MasterWorkerResult, error) {
	if chunks <= 0 || len(workers) == 0 {
		return nil, fmt.Errorf("rms: master-worker needs chunks and workers")
	}
	m := New(tp)
	eng := tp.Engine
	res := &MasterWorkerResult{ChunksDone: map[string]int{}}
	start := eng.Now()

	var masterTask *Task
	next := 0
	done := 0

	assign := func(worker TaskID) {
		if next >= chunks {
			masterTask.Send(worker, tagWork, 1e-6, -1) // poison pill
			return
		}
		masterTask.Send(worker, tagWork, chunkMB, next)
		next++
	}

	_, err := m.Spawn(master, func(t *Task) {
		masterTask = t
		var collect func(Message)
		collect = func(msg Message) {
			done++
			host := m.tasks[msg.From].hostName
			res.ChunksDone[host]++
			if done == chunks {
				res.Time = eng.Now() - start
				eng.Halt()
				return
			}
			assign(msg.From)
			t.Recv(tagResult, collect)
		}
		t.Recv(tagResult, collect)
	})
	if err != nil {
		return nil, err
	}

	for _, w := range workers {
		_, err := m.Spawn(w, func(t *Task) {
			var work func(Message)
			work = func(msg Message) {
				if idx, _ := msg.Payload.(int); idx < 0 {
					t.Exit()
					return
				}
				t.Compute(chunkMflop, func() {
					t.Send(masterTask.ID(), tagResult, 0.01, nil)
				})
				t.Recv(tagWork, work)
			}
			t.Recv(tagWork, work)
		})
		if err != nil {
			return nil, err
		}
	}

	// Initial distribution: one chunk per worker (bounded self-scheduling).
	for id := TaskID(2); int(id) <= len(workers)+1; id++ {
		assign(id)
	}

	if err := eng.Run(); err != nil {
		return nil, err
	}
	if done < chunks {
		return nil, fmt.Errorf("rms: farm stalled at %d/%d chunks", done, chunks)
	}
	return res, nil
}

// RunRing passes a token of tokenMB around a ring of hosts `rounds`
// times, returning the total wall-clock time — a latency/bandwidth
// microbenchmark for the substrate.
func RunRing(tp *grid.Topology, hosts []string, rounds int, tokenMB float64) (float64, error) {
	if len(hosts) < 2 || rounds < 1 {
		return 0, fmt.Errorf("rms: ring needs >=2 hosts and >=1 round")
	}
	m := New(tp)
	eng := tp.Engine
	start := eng.Now()
	total := 0.0

	ids := make([]TaskID, len(hosts))
	hops := 0
	want := rounds * len(hosts)
	for i, h := range hosts {
		i := i
		id, err := m.Spawn(h, func(t *Task) {
			var pass func(Message)
			pass = func(msg Message) {
				hops++
				if hops == want {
					total = eng.Now() - start
					eng.Halt()
					return
				}
				t.Send(ids[(i+1)%len(ids)], tagToken, tokenMB, nil)
				t.Recv(tagToken, pass)
			}
			t.Recv(tagToken, pass)
		})
		if err != nil {
			return 0, err
		}
		ids[i] = id
	}
	// Kick off: host 0 sends to host 1.
	first := m.Task(ids[0])
	first.Send(ids[1%len(ids)], tagToken, tokenMB, nil)
	// The kick counts as the first hop's send; account by expecting one
	// extra delivery at task 1. (hops counts deliveries; want stays as
	// rounds*len(hosts) with the initial send being hop 1's delivery.)
	if err := eng.Run(); err != nil {
		return 0, err
	}
	if math.IsNaN(total) || total <= 0 {
		return 0, fmt.Errorf("rms: ring did not complete")
	}
	return total, nil
}
