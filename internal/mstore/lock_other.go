//go:build !unix

package mstore

import "os"

// Non-unix platforms have no flock(2); writable opens proceed unguarded,
// matching the store's pre-lock behavior. The single-writer guarantee is
// only enforced where advisory file locks exist.
func acquireDirLock(string) (*os.File, error) { return nil, nil }

func releaseDirLock(*os.File) {}
