package mstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Kind names the resource class a measurement belongs to. Kinds keep one
// store shared by several subsystems self-describing: the NWS writes CPU
// and bandwidth samples, load traces write ambient-load steps, and a
// reader filters by kind without out-of-band context.
type Kind uint8

const (
	// KindCPU is a host CPU-availability sample (0..1], one per sensor
	// sweep.
	KindCPU Kind = 1
	// KindBandwidth is a link available-bandwidth sample (MB/s).
	KindBandwidth Kind = 2
	// KindLoad is one step of a piecewise-constant ambient-load trace;
	// its tick carries the step's start time (see TimeTick).
	KindLoad Kind = 3
)

// String names the kind for reports and errors.
func (k Kind) String() string {
	switch k {
	case KindCPU:
		return "cpu"
	case KindBandwidth:
		return "bandwidth"
	case KindLoad:
		return "load"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one measurement: resource kind, series name, tick, value.
// Tick is the sample's position on the series' time axis — a sweep
// sequence number for sensor series, or the IEEE-754 bits of a float
// time for trace steps (TimeTick/TickTime round-trip losslessly).
// Records replay in append order, so tick is ordering metadata for
// readers, not a replay key.
type Record struct {
	Kind   Kind
	Series string
	Tick   uint64
	Value  float64
}

// TimeTick packs a float64 time into a tick losslessly.
func TimeTick(t float64) uint64 { return math.Float64bits(t) }

// TickTime unpacks a tick written by TimeTick.
func TickTime(tick uint64) float64 { return math.Float64frombits(tick) }

// Typed failures. Readers must surface corruption as one of these — never
// as garbage records, never as a panic.
var (
	// ErrCorruptSegment reports a sealed segment (or an explicit strict
	// decode) whose bytes do not parse: bad magic, an impossible frame
	// length, a CRC mismatch, or a frame running past end of file.
	ErrCorruptSegment = errors.New("mstore: corrupt segment")
	// ErrBadManifest reports a manifest that cannot be trusted: garbled
	// header, unparseable or out-of-order segment names, duplicates, or a
	// named segment missing from the directory.
	ErrBadManifest = errors.New("mstore: bad manifest")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("mstore: store is closed")
	// ErrReadOnly reports an append to a store opened with ReadOnly.
	ErrReadOnly = errors.New("mstore: store is read-only")
	// ErrStoreLocked reports a writable Open of a directory that another
	// live Store already holds for writing. Two writers on one directory
	// would clobber each other's frames (each flushes at its own notion
	// of the live offset), so the second Open fails instead.
	ErrStoreLocked = errors.New("mstore: store locked by another writer")
)

// Frame layout, little-endian:
//
//	u32 payload length
//	u32 CRC-32 (IEEE) of the payload
//	payload:
//	  u8  kind
//	  u16 series-name length, then the name bytes
//	  u64 tick
//	  u64 value (float64 bits)
//
// The length field is written first and covers only the payload, so a
// reader always knows how many bytes a whole frame needs before trusting
// any of them; the CRC then vouches for the payload. minPayload is the
// payload size of an empty series name; maxPayload bounds the length
// field so a torn or flipped length byte cannot send the reader chasing
// gigabytes.
const (
	frameHeader = 8
	minPayload  = 1 + 2 + 8 + 8
	maxSeries   = 1 << 10
	maxPayload  = minPayload + maxSeries
)

// appendFrame encodes r as one frame onto buf and returns the extended
// slice. The series name must fit maxSeries.
func appendFrame(buf []byte, r Record) ([]byte, error) {
	if len(r.Series) > maxSeries {
		return buf, fmt.Errorf("mstore: series name %d bytes, max %d", len(r.Series), maxSeries)
	}
	payload := minPayload + len(r.Series)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payload))
	crcAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // CRC placeholder
	payloadAt := len(buf)
	buf = append(buf, byte(r.Kind))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Series)))
	buf = append(buf, r.Series...)
	buf = binary.LittleEndian.AppendUint64(buf, r.Tick)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Value))
	crc := crc32.ChecksumIEEE(buf[payloadAt:])
	binary.LittleEndian.PutUint32(buf[crcAt:], crc)
	return buf, nil
}

// decodeFrame parses one frame at the start of data. ok reports a whole,
// CRC-clean frame; n is its total size. !ok means data holds no valid
// frame at offset 0 — the caller decides whether that is a torn tail
// (live segment) or corruption (sealed segment).
func decodeFrame(data []byte) (r Record, n int, ok bool) {
	if len(data) < frameHeader {
		return Record{}, 0, false
	}
	payload := int(binary.LittleEndian.Uint32(data))
	if payload < minPayload || payload > maxPayload {
		return Record{}, 0, false
	}
	n = frameHeader + payload
	if len(data) < n {
		return Record{}, 0, false
	}
	crc := binary.LittleEndian.Uint32(data[4:])
	body := data[frameHeader:n]
	if crc32.ChecksumIEEE(body) != crc {
		return Record{}, 0, false
	}
	nameLen := int(binary.LittleEndian.Uint16(body[1:]))
	if minPayload+nameLen != payload {
		return Record{}, 0, false
	}
	r.Kind = Kind(body[0])
	r.Series = string(body[3 : 3+nameLen])
	rest := body[3+nameLen:]
	r.Tick = binary.LittleEndian.Uint64(rest)
	r.Value = math.Float64frombits(binary.LittleEndian.Uint64(rest[8:]))
	return r, n, true
}
