//go:build unix

package mstore

import (
	"fmt"
	"os"
	"syscall"
)

// acquireDirLock takes an exclusive advisory flock on dir/LOCK so at most
// one writable Store exists per directory per machine. flock locks belong
// to the open file description, so a second Open in the same process (a
// distinct descriptor) conflicts just like one from another process. The
// lock dies with the descriptor: a crashed writer never wedges the
// directory. The name "LOCK" does not parse as a segment, so the
// manifest and orphan sweeps ignore it.
func acquireDirLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(dir+string(os.PathSeparator)+"LOCK", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("mstore: open lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if err == syscall.EWOULDBLOCK {
			return nil, fmt.Errorf("%w: %s", ErrStoreLocked, dir)
		}
		return nil, fmt.Errorf("mstore: flock %s: %w", dir, err)
	}
	return f, nil
}

// releaseDirLock drops the lock. Closing the descriptor releases the
// flock; the explicit unlock just makes the handoff immediate.
func releaseDirLock(f *os.File) {
	if f == nil {
		return
	}
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	f.Close()
}
