package mstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"iter"
	"os"
	"path/filepath"
	"sync"
	"time"

	"apples/internal/obs"
)

// DefaultSegmentBytes is the rotation threshold when WithSegmentBytes
// does not override it: large enough that a day of 10-second sweeps over
// a mid-size testbed fits a handful of segments, small enough that
// sealed-segment fsyncs stay off the append fast path.
const DefaultSegmentBytes = 1 << 20

// Option configures a Store at open.
type Option func(*Store)

// WithSegmentBytes caps the live segment: an append that would push it
// past n bytes seals it (flush + fsync) and rotates to a fresh segment.
// n must cover at least one maximal frame.
func WithSegmentBytes(n int64) Option {
	if n < int64(len(segMagic)+frameHeader+maxPayload) {
		panic("mstore: segment size must hold at least one frame")
	}
	return func(s *Store) { s.segBytes = n }
}

// WithMetrics registers the store's instruments in the registry:
// mstore_segments (gauge), mstore_appended_bytes_total (counter), and
// the mstore_append_seconds latency histogram. Handles resolve here,
// once; nil leaves metrics off.
func WithMetrics(m *obs.Metrics) Option {
	return func(s *Store) {
		if m == nil {
			s.metSegments, s.metBytes, s.metAppend = nil, nil, nil
			return
		}
		s.metSegments = m.Gauge(obs.MetricStoreSegments)
		s.metBytes = m.Counter(obs.MetricStoreBytes)
		s.metAppend = m.Histogram(obs.MetricStoreAppendSeconds, obs.StoreAppendBuckets)
	}
}

// ReadOnly opens the store for streaming reads only: Append fails with
// ErrReadOnly and recovery is observational — a torn live tail is
// reported in Recovery but the file is left untouched. This is how
// committed golden stores are replayed from testdata without modifying
// the repository.
func ReadOnly() Option {
	return func(s *Store) { s.readOnly = true }
}

// Recovery reports what opening the store found at the live segment's
// tail. DroppedBytes is how many trailing bytes did not form whole
// CRC-clean frames — a torn write from a crash — and were truncated
// away (read-only opens report without truncating).
type Recovery struct {
	DroppedBytes int64
	// LiveRecords is how many records the live segment held after
	// recovery.
	LiveRecords int
}

// Store is an append-only segment log of measurement records. All
// methods are safe for concurrent use; appends are serialized, reads
// stream a point-in-time view of the manifest.
type Store struct {
	mu       sync.Mutex
	dir      string
	segBytes int64
	readOnly bool
	closed   bool

	names    []string // manifest order; the last is the live segment
	lock     *os.File // exclusive flock on dir/LOCK; nil when read-only
	live     *os.File
	w        *bufio.Writer
	liveSize int64
	appended uint64
	recovery Recovery
	buf      []byte // frame scratch, reused across appends

	metSegments *obs.Gauge
	metBytes    *obs.Counter
	metAppend   *obs.Histogram
}

// Open opens (creating if needed) the store in dir. It validates the
// manifest, removes segment files orphaned by a crash mid-rotation,
// recovers the live segment's torn tail, and leaves the store ready to
// append. Manifest damage is ErrBadManifest; the live segment can never
// fail open — any tail damage truncates and is reported via Recovery.
//
// Writable opens take an exclusive advisory lock on the directory: a
// second writable Open while the first Store is live fails with
// ErrStoreLocked rather than letting two writers flush over each
// other's frames. Read-only opens never lock and coexist with a writer.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{dir: dir, segBytes: DefaultSegmentBytes}
	for _, opt := range opts {
		opt(s)
	}
	ok := false
	if !s.readOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		lock, err := acquireDirLock(dir)
		if err != nil {
			return nil, err
		}
		s.lock = lock
		defer func() {
			if !ok {
				releaseDirLock(s.lock)
				s.lock = nil
			}
		}()
	}
	names, err := readManifest(dir)
	switch {
	case errors.Is(err, os.ErrNotExist):
		if s.readOnly {
			return nil, fmt.Errorf("mstore: open read-only %s: %w", dir, err)
		}
		// Fresh store: first segment, then the manifest naming it.
		name := segName(1)
		if err := createSegment(dir, name); err != nil {
			return nil, err
		}
		if err := writeManifest(dir, []string{name}); err != nil {
			return nil, err
		}
		names = []string{name}
	case err != nil:
		return nil, err
	}
	for _, name := range names {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			return nil, fmt.Errorf("%w: listed segment %s: %v", ErrBadManifest, name, err)
		}
	}
	if !s.readOnly {
		if err := s.removeOrphans(names); err != nil {
			return nil, err
		}
	}
	s.names = names
	if err := s.openLive(); err != nil {
		return nil, err
	}
	if s.metSegments != nil {
		s.metSegments.Set(float64(len(s.names)))
	}
	ok = true
	return s, nil
}

// createSegment writes a fresh segment file holding only the magic
// header and fsyncs it, so the manifest never commits a name whose file
// could vanish in a crash.
func createSegment(dir, name string) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// removeOrphans deletes segment files a crash left behind between
// creating the next segment and committing it to the manifest. Only
// files with sequence numbers beyond the manifest tail qualify; an
// unlisted file inside the manifest's range means the directory and
// manifest disagree about history, which is ErrBadManifest.
func (s *Store) removeOrphans(names []string) error {
	listed := make(map[string]bool, len(names))
	for _, n := range names {
		listed[n] = true
	}
	lastSeq, _ := parseSegName(names[len(names)-1])
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if name == manifestName+".tmp" {
			os.Remove(filepath.Join(s.dir, name)) // half-written rotation
			continue
		}
		seq, ok := parseSegName(name)
		if !ok || listed[name] {
			continue
		}
		if seq <= lastSeq {
			return fmt.Errorf("%w: directory holds unlisted segment %s", ErrBadManifest, name)
		}
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// openLive scans the live (last) segment for its torn tail, truncates it
// to the last whole frame (unless read-only), and positions the appender
// after it.
func (s *Store) openLive() error {
	path := filepath.Join(s.dir, s.names[len(s.names)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	live := 0
	good, _ := scanSegment(data, false, func(Record) bool { live++; return true })
	s.recovery = Recovery{DroppedBytes: int64(len(data) - good), LiveRecords: live}
	if s.readOnly {
		return nil
	}
	if good < len(segMagic) {
		// The crash tore the header itself: nothing is recoverable, so
		// rewrite the magic and start the segment over.
		if err := os.WriteFile(path, segMagic, 0o644); err != nil {
			return err
		}
		good = len(segMagic)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if s.recovery.DroppedBytes > 0 {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return err
	}
	s.live = f
	s.liveSize = int64(good)
	s.w = bufio.NewWriter(f)
	return nil
}

// Append adds one record to the live segment, rotating first when the
// segment is full. The write lands in the store's buffer; it reaches the
// disk at the next rotation, Sync, or Close — and a crash before then
// loses at most the buffered tail, which recovery truncates cleanly.
func (s *Store) Append(r Record) error {
	var start time.Time
	if s.metAppend != nil {
		start = time.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.readOnly {
		return ErrReadOnly
	}
	buf, err := appendFrame(s.buf[:0], r)
	if err != nil {
		return err
	}
	s.buf = buf
	if s.liveSize+int64(len(buf)) > s.segBytes && s.liveSize > int64(len(segMagic)) {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := s.w.Write(buf); err != nil {
		return err
	}
	s.liveSize += int64(len(buf))
	s.appended++
	if s.metBytes != nil {
		s.metBytes.Add(uint64(len(buf)))
	}
	if s.metAppend != nil {
		s.metAppend.Observe(time.Since(start).Seconds())
	}
	return nil
}

// rotateLocked seals the live segment — flush, fsync, close — then
// creates its successor and commits it to the manifest. Once sealed, a
// segment is immutable and reads of it are strict.
func (s *Store) rotateLocked() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.live.Sync(); err != nil {
		return err
	}
	if err := s.live.Close(); err != nil {
		return err
	}
	lastSeq, _ := parseSegName(s.names[len(s.names)-1])
	name := segName(lastSeq + 1)
	if err := createSegment(s.dir, name); err != nil {
		return err
	}
	names := append(append([]string(nil), s.names...), name)
	if err := writeManifest(s.dir, names); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(int64(len(segMagic)), io.SeekStart); err != nil {
		f.Close()
		return err
	}
	s.names = names
	s.live = f
	s.liveSize = int64(len(segMagic))
	s.w = bufio.NewWriter(f)
	if s.metSegments != nil {
		s.metSegments.Set(float64(len(s.names)))
	}
	return nil
}

// Sync flushes buffered appends and fsyncs the live segment.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.readOnly {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.live.Sync()
}

// Close flushes, fsyncs, and releases the store. Further appends fail
// with ErrClosed; Records keeps working (it reads from disk).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	defer func() {
		releaseDirLock(s.lock)
		s.lock = nil
	}()
	if s.readOnly || s.live == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.live.Sync(); err != nil {
		return err
	}
	return s.live.Close()
}

// Records streams every record in manifest order, oldest segment first.
// Sealed segments decode strictly (corruption surfaces as a yielded
// ErrCorruptSegment); the live segment reads leniently up to its last
// whole frame, matching recovery semantics. The walk is frame by frame
// through a buffered reader, so replaying hours of history holds one
// frame in memory, not the store.
func (s *Store) Records() iter.Seq2[Record, error] {
	return func(yield func(Record, error) bool) {
		s.mu.Lock()
		if !s.closed && !s.readOnly && s.w != nil {
			// Surface buffered appends to this read without forcing an
			// fsync; durability still arrives at the next Sync/rotation.
			if err := s.w.Flush(); err != nil {
				s.mu.Unlock()
				yield(Record{}, err)
				return
			}
		}
		names := append([]string(nil), s.names...)
		s.mu.Unlock()
		for i, name := range names {
			sealed := i < len(names)-1
			if !streamSegment(filepath.Join(s.dir, name), sealed, yield) {
				return
			}
		}
	}
}

// streamSegment yields the records of one segment file. Returns false
// when the consumer stopped the iteration.
func streamSegment(path string, strict bool, yield func(Record, error) bool) bool {
	f, err := os.Open(path)
	if err != nil {
		return yield(Record{}, err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != string(segMagic) {
		if strict {
			return yield(Record{}, fmt.Errorf("%w: %s: missing segment magic", ErrCorruptSegment, filepath.Base(path)))
		}
		return true // torn header on a read-only live segment: empty
	}
	frame := make([]byte, frameHeader+maxPayload)
	for {
		if _, err := io.ReadFull(br, frame[:frameHeader]); err != nil {
			if err == io.EOF {
				return true
			}
			if strict {
				return yield(Record{}, fmt.Errorf("%w: %s: truncated frame header", ErrCorruptSegment, filepath.Base(path)))
			}
			return true
		}
		payload := int(binary.LittleEndian.Uint32(frame))
		if payload < minPayload || payload > maxPayload {
			if strict {
				return yield(Record{}, fmt.Errorf("%w: %s: impossible frame length %d", ErrCorruptSegment, filepath.Base(path), payload))
			}
			return true
		}
		if _, err := io.ReadFull(br, frame[frameHeader:frameHeader+payload]); err != nil {
			if strict {
				return yield(Record{}, fmt.Errorf("%w: %s: truncated frame payload", ErrCorruptSegment, filepath.Base(path)))
			}
			return true
		}
		r, n, ok := decodeFrame(frame[:frameHeader+payload])
		if !ok || n != frameHeader+payload {
			if strict {
				return yield(Record{}, fmt.Errorf("%w: %s: frame CRC mismatch", ErrCorruptSegment, filepath.Base(path)))
			}
			return true
		}
		if !yield(r, nil) {
			return false
		}
	}
}

// Segments reports how many segment files the manifest lists.
func (s *Store) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.names)
}

// Appended reports how many records this process appended.
func (s *Store) Appended() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appended
}

// Recovery reports what Open found at the live segment's tail.
func (s *Store) Recovery() Recovery { return s.recovery }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }
