package mstore

import (
	"bytes"
	"fmt"
)

// segMagic opens every segment file. It keeps a stray file from being
// mistaken for a segment and gives the torn-tail scanner a fixed prefix:
// a live segment shorter than the magic is a crash during creation, and
// everything after the magic is frames.
var segMagic = []byte("MSTORE1\n")

// scanSegment walks the frames of one segment image.
//
// In strict mode (sealed segments, DecodeSegment) any flaw — missing or
// wrong magic, an invalid frame, trailing bytes that are not a whole
// frame — is ErrCorruptSegment: sealed segments were fsynced before the
// manifest committed them, so damage there is corruption, not a crash
// artifact.
//
// In live mode the segment is the one file a kill can tear, and torn
// writes only ever truncate a suffix. The scanner keeps every whole,
// CRC-clean frame and reports the first offset that does not start one;
// the caller drops [good, len(data)) as the torn tail. A live segment
// shorter than the magic recovers as empty with all bytes dropped.
func scanSegment(data []byte, strict bool, fn func(Record) bool) (good int, err error) {
	if len(data) < len(segMagic) || !bytes.Equal(data[:len(segMagic)], segMagic) {
		if strict {
			return 0, fmt.Errorf("%w: missing segment magic", ErrCorruptSegment)
		}
		return 0, nil
	}
	off := len(segMagic)
	for off < len(data) {
		r, n, ok := decodeFrame(data[off:])
		if !ok {
			if strict {
				return off, fmt.Errorf("%w: invalid frame at byte %d", ErrCorruptSegment, off)
			}
			return off, nil
		}
		off += n
		if fn != nil && !fn(r) {
			return off, nil
		}
	}
	return off, nil
}

// DecodeSegment strictly decodes one whole segment image (magic header
// plus frames) into its records. Any corruption — wrong magic, flipped
// CRC bytes, a truncated frame, an impossible length — returns a typed
// ErrCorruptSegment; the decoder never fabricates records from damaged
// bytes and never panics. This is the sealed-segment read path and the
// FuzzSegmentDecode entry point.
func DecodeSegment(data []byte) ([]Record, error) {
	var recs []Record
	if _, err := scanSegment(data, true, func(r Record) bool {
		recs = append(recs, r)
		return true
	}); err != nil {
		return nil, err
	}
	return recs, nil
}

// EncodeSegment renders records as one segment image, the inverse of
// DecodeSegment (tests and the fuzz corpus generator use it; the store
// itself streams frames through its writer).
func EncodeSegment(recs []Record) ([]byte, error) {
	buf := append([]byte(nil), segMagic...)
	var err error
	for _, r := range recs {
		if buf, err = appendFrame(buf, r); err != nil {
			return nil, err
		}
	}
	return buf, nil
}
