package mstore

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

var updateCorpus = flag.Bool("update", false, "rewrite the committed fuzz corpus under testdata/")

// corpusSeeds builds the committed FuzzSegmentDecode corpus: valid
// segments of each shape, then one entry per corruption class the
// decoder must reject with a typed error — flipped CRC bytes, truncated
// frames, impossible lengths, bad magic, zero-length files, trailing
// garbage.
func corpusSeeds(t testing.TB) map[string][]byte {
	t.Helper()
	mustEncode := func(recs []Record) []byte {
		img, err := EncodeSegment(recs)
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	valid := mustEncode([]Record{
		{Kind: KindCPU, Series: "alpha1", Tick: 1, Value: 0.93},
		{Kind: KindBandwidth, Series: "link-alpha1-alpha2", Tick: 1, Value: 7.25},
		{Kind: KindLoad, Series: "sparc2", Tick: TimeTick(12.5), Value: 1.5},
	})
	seeds := map[string][]byte{
		"seed-valid":       valid,
		"seed-empty":       append([]byte(nil), segMagic...),
		"seed-one":         mustEncode([]Record{{Kind: KindCPU, Series: "x", Tick: 0, Value: math.Inf(1)}}),
		"seed-empty-name":  mustEncode([]Record{{Kind: KindLoad, Series: "", Tick: 7, Value: -0.0}}),
		"seed-zero-length": {},
		"seed-short-magic": []byte("MST"),
		"seed-bad-magic":   []byte("NOTSTORE"),
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(segMagic)+4] ^= 0xFF // first frame's CRC field
	seeds["seed-flipped-crc"] = flipped
	flippedBody := append([]byte(nil), valid...)
	flippedBody[len(flippedBody)-1] ^= 0x01 // last frame's value bits
	seeds["seed-flipped-value"] = flippedBody
	seeds["seed-truncated-frame"] = valid[:len(valid)-5]
	seeds["seed-truncated-header"] = valid[:len(segMagic)+3]
	huge := append([]byte(nil), segMagic...)
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0) // length 2^32-1
	seeds["seed-huge-length"] = huge
	seeds["seed-trailing-garbage"] = append(append([]byte(nil), valid...), "tail"...)
	return seeds
}

// TestFuzzCorpusCommitted keeps the committed corpus in sync with
// corpusSeeds (regenerate with `go test -run FuzzCorpus -update`) and
// replays every committed entry through the decode invariants, so the
// corpus guards the decoder on every plain `go test` run, not only under
// -fuzz.
func TestFuzzCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzSegmentDecode")
	if *updateCorpus {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range corpusSeeds(t) {
			entry := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
			if err := os.WriteFile(filepath.Join(dir, name), []byte(entry), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%v (run `go test -run FuzzCorpus -update` to create the corpus)", err)
	}
	want := corpusSeeds(t)
	seen := 0
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines := bytes.SplitN(raw, []byte("\n"), 3)
		if len(lines) < 2 || string(lines[0]) != "go test fuzz v1" {
			t.Fatalf("%s: not a go fuzz v1 corpus entry", e.Name())
		}
		quoted := bytes.TrimSuffix(bytes.TrimPrefix(lines[1], []byte("[]byte(")), []byte(")"))
		data, err := strconv.Unquote(string(quoted))
		if err != nil {
			t.Fatalf("%s: unparseable corpus payload: %v", e.Name(), err)
		}
		if wantData, ok := want[e.Name()]; ok {
			if !bytes.Equal([]byte(data), wantData) {
				t.Fatalf("%s: committed corpus diverged from corpusSeeds (regenerate with -update)", e.Name())
			}
			seen++
		}
		checkDecodeInvariants(t, []byte(data))
	}
	if seen != len(want) {
		t.Fatalf("corpus holds %d of %d seed entries (regenerate with -update)", seen, len(want))
	}
}

// checkDecodeInvariants is the shared oracle for the fuzzer and the
// corpus replay: DecodeSegment must never panic, must reject damage with
// the typed ErrCorruptSegment (never garbage records), and must accept
// only byte streams its encoder reproduces exactly.
func checkDecodeInvariants(t *testing.T, data []byte) {
	t.Helper()
	recs, err := DecodeSegment(data)
	if err != nil {
		if !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("DecodeSegment returned untyped error %v", err)
		}
		if recs != nil {
			t.Fatal("DecodeSegment returned records alongside an error")
		}
		return
	}
	// Accepted input: the frame encoding is canonical, so re-encoding
	// the records must reproduce the input bit for bit.
	img, err := EncodeSegment(recs)
	if err != nil {
		t.Fatalf("re-encoding accepted records failed: %v", err)
	}
	if !bytes.Equal(img, data) {
		t.Fatalf("accepted segment is not canonical: %d input bytes re-encode to %d", len(data), len(img))
	}
	for _, r := range recs {
		if len(r.Series) > maxSeries {
			t.Fatalf("decoded series longer than maxSeries: %d", len(r.Series))
		}
	}
}

// FuzzSegmentDecode drives arbitrary bytes through the strict
// sealed-segment decoder. The committed corpus under testdata/fuzz seeds
// the interesting shapes; the invariants live in checkDecodeInvariants.
func FuzzSegmentDecode(f *testing.F) {
	for _, data := range corpusSeeds(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkDecodeInvariants(t, data)
	})
}
