package mstore

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The manifest is the authority on segment order: a text file whose
// header line pins the format and whose remaining lines name segments
// oldest first. The last named segment is the live one. Rotation rewrites
// the manifest atomically (temp file + rename + directory fsync), so a
// crash leaves either the old list or the new list — never half of one.
const (
	manifestName   = "MANIFEST"
	manifestHeader = "mstore-manifest v1"
)

// segName renders the canonical file name of segment seq.
func segName(seq uint64) string { return fmt.Sprintf("%08d.seg", seq) }

// parseSegName extracts the sequence number from a canonical segment
// name.
func parseSegName(name string) (uint64, bool) {
	if len(name) != 12 || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[:8], 10, 64)
	if err != nil || segName(seq) != name {
		return 0, false
	}
	return seq, true
}

// readManifest loads and validates the segment list: header intact,
// every name canonical, sequence numbers strictly increasing (which also
// rules out duplicates), at least one segment. Violations are
// ErrBadManifest — an untrustworthy manifest must stop the open, not
// guess an order.
func readManifest(dir string) ([]string, error) {
	f, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() || sc.Text() != manifestHeader {
		return nil, fmt.Errorf("%w: missing header %q", ErrBadManifest, manifestHeader)
	}
	var names []string
	var prev uint64
	for sc.Scan() {
		name := strings.TrimSpace(sc.Text())
		if name == "" {
			continue
		}
		seq, ok := parseSegName(name)
		if !ok {
			return nil, fmt.Errorf("%w: bad segment name %q", ErrBadManifest, name)
		}
		if len(names) > 0 && seq <= prev {
			return nil, fmt.Errorf("%w: segment %q out of order after %08d.seg", ErrBadManifest, name, prev)
		}
		names = append(names, name)
		prev = seq
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%w: no segments listed", ErrBadManifest)
	}
	return names, nil
}

// writeManifest atomically replaces the manifest with the given segment
// list and fsyncs both the file and the directory, so the new list is
// durable before any caller relies on it.
func writeManifest(dir string, names []string) error {
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, manifestHeader)
	for _, name := range names {
		fmt.Fprintln(w, name)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creations inside it are
// durable. Platforms that reject directory fsync (it is advisory on some
// filesystems) do not fail the store.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		// EINVAL from directory fsync is a filesystem quirk, not data loss.
		if pe, ok := err.(*os.PathError); !ok || pe.Err.Error() != "invalid argument" {
			return err
		}
	}
	return nil
}
