package mstore

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// buildCrashFixture writes a store whose live segment carries a healthy
// share of the records (small segments force rotations first), closes
// it, and returns the directory, the full record stream, and the frame
// end-offsets of the live segment — the ground truth the kill-point
// checks are scored against.
func buildCrashFixture(t *testing.T, n int) (dir string, recs []Record, liveName string, frameEnds []int) {
	t.Helper()
	dir = t.TempDir()
	st, err := Open(dir, WithSegmentBytes(int64(len(segMagic)+frameHeader+maxPayload)))
	if err != nil {
		t.Fatal(err)
	}
	recs = mkRecords(n)
	for _, r := range recs {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	liveName = names[len(names)-1]
	data, err := os.ReadFile(filepath.Join(dir, liveName))
	if err != nil {
		t.Fatal(err)
	}
	off := len(segMagic)
	for off < len(data) {
		_, n, ok := decodeFrame(data[off:])
		if !ok {
			t.Fatalf("fixture live segment has invalid frame at %d", off)
		}
		off += n
		frameEnds = append(frameEnds, off)
	}
	if len(frameEnds) < 3 {
		t.Fatalf("fixture live segment holds only %d records; kill points need more", len(frameEnds))
	}
	return dir, recs, liveName, frameEnds
}

// copyStore clones a store directory so each kill point mutates a fresh
// copy.
func copyStore(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestCrashRecoveryKillPoints is the crash-recovery property harness: it
// truncates the live segment at randomized byte offsets — mid-frame,
// mid-header, inside the magic, at exact frame boundaries — and reopen
// must (a) never panic, (b) recover every record up to the torn tail,
// (c) report exactly the dropped trailing bytes, and (d) accept further
// appends that extend the recovered prefix. At least 50 randomized kill
// points run, plus the deliberate edge offsets.
func TestCrashRecoveryKillPoints(t *testing.T) {
	dir, recs, liveName, frameEnds := buildCrashFixture(t, 400)
	livePath := func(d string) string { return filepath.Join(d, liveName) }
	liveSize := frameEnds[len(frameEnds)-1]
	liveRecords := len(frameEnds)
	sealedRecords := len(recs) - liveRecords

	rng := rand.New(rand.NewSource(20260808))
	cuts := []int{0, 1, len(segMagic) - 1, len(segMagic), liveSize - 1, liveSize,
		frameEnds[0], frameEnds[0] + 1, frameEnds[0] + frameHeader - 1}
	for len(cuts) < 59 { // 50 randomized points on top of the edges
		cuts = append(cuts, rng.Intn(liveSize+1))
	}

	for _, cut := range cuts {
		dst := copyStore(t, dir)
		if err := os.Truncate(livePath(dst), int64(cut)); err != nil {
			t.Fatal(err)
		}

		// Expected survivors: all sealed records plus the live frames
		// wholly before the cut.
		goodFrames := 0
		goodOff := len(segMagic)
		for _, end := range frameEnds {
			if end <= cut {
				goodFrames++
				goodOff = end
			}
		}
		wantDropped := int64(cut - goodOff)
		if cut < len(segMagic) {
			wantDropped = int64(cut) // torn header: every byte is unusable
		}
		want := recs[:sealedRecords+goodFrames]

		st, err := Open(dst, WithSegmentBytes(int64(len(segMagic)+frameHeader+maxPayload)))
		if err != nil {
			t.Fatalf("cut=%d: reopen failed: %v", cut, err)
		}
		if got := st.Recovery().DroppedBytes; got != wantDropped {
			t.Fatalf("cut=%d: recovery reported %d dropped bytes, want %d", cut, got, wantDropped)
		}
		if got := st.Recovery().LiveRecords; got != goodFrames {
			t.Fatalf("cut=%d: recovery reported %d live records, want %d", cut, got, goodFrames)
		}
		got := collect(t, st)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cut=%d: recovered %d records, want %d (prefix property violated)", cut, len(got), len(want))
		}

		// Life goes on: appends after recovery extend the recovered
		// prefix and survive another clean reopen.
		extra := Record{Kind: KindCPU, Series: "post-crash", Tick: 999, Value: 0.5}
		if err := st.Append(extra); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("cut=%d: close after recovery: %v", cut, err)
		}
		re, err := Open(dst)
		if err != nil {
			t.Fatalf("cut=%d: second reopen: %v", cut, err)
		}
		if re.Recovery().DroppedBytes != 0 {
			t.Fatalf("cut=%d: clean reopen still reports %d dropped bytes", cut, re.Recovery().DroppedBytes)
		}
		if got := collect(t, re); !reflect.DeepEqual(got, append(append([]Record(nil), want...), extra)) {
			t.Fatalf("cut=%d: post-recovery append did not extend the stream", cut)
		}
		re.Close()
	}
}

// TestCrashRecoverySealedCorruption pins the other half of the recovery
// contract: damage to a *sealed* segment is not a crash artifact and
// must surface as a typed ErrCorruptSegment from the read stream — never
// as silently dropped or fabricated records.
func TestCrashRecoverySealedCorruption(t *testing.T) {
	dir, _, liveName, _ := buildCrashFixture(t, 400)
	names, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if names[0] == liveName {
		t.Fatal("fixture needs at least one sealed segment")
	}
	for _, damage := range []struct {
		name string
		mut  func(path string) error
	}{
		{"truncated", func(p string) error {
			info, err := os.Stat(p)
			if err != nil {
				return err
			}
			return os.Truncate(p, info.Size()-5)
		}},
		{"flipped byte", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[len(data)/2] ^= 0x40
			return os.WriteFile(p, data, 0o644)
		}},
	} {
		dst := copyStore(t, dir)
		if err := damage.mut(filepath.Join(dst, names[0])); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dst)
		if err != nil {
			t.Fatalf("%s: open must succeed (sealed segments are read lazily): %v", damage.name, err)
		}
		var sawErr error
		for _, err := range st.Records() {
			if err != nil {
				sawErr = err
				break
			}
		}
		if !errors.Is(sawErr, ErrCorruptSegment) {
			t.Fatalf("%s sealed segment: stream returned %v, want ErrCorruptSegment", damage.name, sawErr)
		}
		st.Close()
	}
}
