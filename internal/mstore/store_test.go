package mstore

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"apples/internal/obs"
)

// mkRecords builds a deterministic record stream that exercises every
// kind, varied series names, and awkward float values.
func mkRecords(n int) []Record {
	kinds := []Kind{KindCPU, KindBandwidth, KindLoad}
	series := []string{"alpha1", "link-alpha1-alpha2", "sp2a", "x"}
	recs := make([]Record, n)
	for i := range recs {
		v := math.Sin(float64(i)) * float64(i%7+1)
		if i%13 == 0 {
			v = 0
		}
		recs[i] = Record{
			Kind:   kinds[i%len(kinds)],
			Series: series[i%len(series)],
			Tick:   uint64(i),
			Value:  v,
		}
	}
	return recs
}

// collect drains a store's record stream, failing the test on a yielded
// error.
func collect(t *testing.T, st *Store) []Record {
	t.Helper()
	var recs []Record
	for r, err := range st.Records() {
		if err != nil {
			t.Fatalf("Records yielded error: %v", err)
		}
		recs = append(recs, r)
	}
	return recs
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := mkRecords(500)
	for _, r := range want {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Records must see buffered appends without an intervening Sync.
	if got := collect(t, st); !reflect.DeepEqual(got, want) {
		t.Fatalf("in-process read returned %d records, want %d (or contents differ)", len(got), len(want))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Recovery().DroppedBytes != 0 {
		t.Fatalf("clean close reported %d dropped bytes", re.Recovery().DroppedBytes)
	}
	if got := collect(t, re); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopen lost or changed records: got %d want %d", len(got), len(want))
	}
}

func TestStoreRotationAndManifestOrder(t *testing.T) {
	dir := t.TempDir()
	// The smallest legal segment holds a few dozen of these short
	// frames, so 200 appends must rotate several times.
	st, err := Open(dir, WithSegmentBytes(int64(len(segMagic)+frameHeader+maxPayload)))
	if err != nil {
		t.Fatal(err)
	}
	want := mkRecords(200)
	for _, r := range want {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if st.Segments() < 5 {
		t.Fatalf("only %d segments after 200 tiny-segment appends", st.Segments())
	}
	if got := collect(t, st); !reflect.DeepEqual(got, want) {
		t.Fatalf("rotated store returned wrong records (got %d, want %d)", len(got), len(want))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	names, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != st.Segments() {
		t.Fatalf("manifest lists %d segments, store reports %d", len(names), st.Segments())
	}
	for i := 1; i < len(names); i++ {
		a, _ := parseSegName(names[i-1])
		b, _ := parseSegName(names[i])
		if b <= a {
			t.Fatalf("manifest out of order: %s then %s", names[i-1], names[i])
		}
	}

	// Reopen and continue appending: the stream stays one ordered log.
	re, err := Open(dir, WithSegmentBytes(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	more := mkRecords(50)
	for _, r := range more {
		if err := re.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := collect(t, re); !reflect.DeepEqual(got, append(append([]Record(nil), want...), more...)) {
		t.Fatal("reopen+append did not extend the original stream")
	}
}

func TestStoreReadOnly(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := mkRecords(40)
	for _, r := range want {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := Open(dir, ReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	if err := ro.Append(want[0]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only append returned %v, want ErrReadOnly", err)
	}
	if got := collect(t, ro); !reflect.DeepEqual(got, want) {
		t.Fatal("read-only stream differs from what was written")
	}

	// A torn tail is reported but not repaired in read-only mode.
	seg := filepath.Join(dir, segName(1))
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	torn, err := Open(dir, ReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	if torn.Recovery().DroppedBytes == 0 {
		t.Fatal("read-only open did not report the torn tail")
	}
	after, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != info.Size()-3 {
		t.Fatalf("read-only open modified the segment file (size %d -> %d)", info.Size()-3, after.Size())
	}
	if got := collect(t, torn); !reflect.DeepEqual(got, want[:len(want)-1]) {
		t.Fatalf("torn read-only stream has %d records, want %d", len(got), len(want)-1)
	}
	if _, err := Open(t.TempDir(), ReadOnly()); err == nil {
		t.Fatal("read-only open of an empty directory must fail, not create a store")
	}
}

func TestStoreMetrics(t *testing.T) {
	reg := obs.NewMetrics()
	st, err := Open(t.TempDir(), WithMetrics(reg),
		WithSegmentBytes(int64(len(segMagic)+4*(frameHeader+maxPayload))))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, r := range mkRecords(300) {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Gauge(obs.MetricStoreSegments).Value(); got != float64(st.Segments()) {
		t.Fatalf("segments gauge %v, store has %d", got, st.Segments())
	}
	if reg.Counter(obs.MetricStoreBytes).Value() == 0 {
		t.Fatal("appended-bytes counter never moved")
	}
	if got := reg.Histogram(obs.MetricStoreAppendSeconds, nil).Count(); got != 300 {
		t.Fatalf("append histogram holds %d observations, want 300", got)
	}
}

func TestStoreBadManifest(t *testing.T) {
	cases := map[string]string{
		"garbled header":  "not a manifest\n00000001.seg\n",
		"bad name":        manifestHeader + "\nnope.seg\n",
		"out of order":    manifestHeader + "\n00000002.seg\n00000001.seg\n",
		"duplicate":       manifestHeader + "\n00000001.seg\n00000001.seg\n",
		"empty list":      manifestHeader + "\n",
		"missing segment": manifestHeader + "\n00000009.seg\n",
	}
	for name, content := range cases {
		dir := t.TempDir()
		// Give the in-range names real files so only the manifest is at
		// fault (except the "missing segment" case).
		for _, seg := range []string{segName(1), segName(2)} {
			if err := createSegment(dir, seg); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); !errors.Is(err, ErrBadManifest) {
			t.Errorf("%s: Open returned %v, want ErrBadManifest", name, err)
		}
	}
}

func TestStoreOrphanCleanup(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := mkRecords(10)
	for _, r := range want {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between creating the next segment and committing
	// it to the manifest: the orphan must vanish on reopen and the next
	// rotation must be able to reuse its name.
	if err := createSegment(dir, segName(2)); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, manifestName+".tmp"), []byte("half"), 0o644)
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := os.Stat(filepath.Join(dir, segName(2))); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("orphan segment survived reopen")
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName+".tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("half-written manifest temp survived reopen")
	}
	if got := collect(t, re); !reflect.DeepEqual(got, want) {
		t.Fatal("orphan cleanup disturbed the record stream")
	}
}

func TestStoreClosed(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(Record{Kind: KindCPU, Series: "a", Value: 1}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(Record{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close returned %v, want ErrClosed", err)
	}
	if err := st.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close returned %v, want ErrClosed", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("double close returned %v", err)
	}
	// Reads still work after close.
	if got := collect(t, st); len(got) != 1 {
		t.Fatalf("post-close read returned %d records, want 1", len(got))
	}
}

func TestTimeTickRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, 0.1, 3600.25, math.Inf(1), -0.0, 1e-300} {
		if got := TickTime(TimeTick(v)); got != v && !(math.IsNaN(got) && math.IsNaN(v)) {
			t.Fatalf("TickTime(TimeTick(%v)) = %v", v, got)
		}
	}
}

func TestSegmentEncodeDecodeRoundTrip(t *testing.T) {
	want := mkRecords(64)
	img, err := EncodeSegment(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSegment(img)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("EncodeSegment/DecodeSegment round trip changed the records")
	}
	// Empty segment: just the magic.
	if recs, err := DecodeSegment(segMagic); err != nil || len(recs) != 0 {
		t.Fatalf("empty segment decoded to (%d records, %v)", len(recs), err)
	}
}

// A second writable Open on a live store must fail loudly instead of
// silently clobbering the first writer's frames: each handle flushes at
// its own notion of the live offset, so two writers corrupt the log.
func TestStoreSingleWriterLock(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append(mkRecords(1)[0]); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir); !errors.Is(err, ErrStoreLocked) {
		t.Fatalf("second writable Open: got %v, want ErrStoreLocked", err)
	}

	// Readers coexist with the live writer.
	ro, err := Open(dir, ReadOnly())
	if err != nil {
		t.Fatalf("read-only Open alongside writer: %v", err)
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}

	// Close releases the lock; the next writer takes over cleanly and
	// sees the first writer's record.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	if got := b.Recovery().LiveRecords; got != 1 {
		t.Fatalf("reopened store holds %d live records, want 1", got)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}
