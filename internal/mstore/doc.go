// Package mstore is the durable measurement store: an append-only
// segment/WAL log of (kind, series, tick, value) records that survives
// process restarts, so forecaster banks warm-start instead of
// cold-starting and recorded monitoring streams replay deterministically
// through the full scheduling pipeline.
//
// Layout on disk is a directory holding fixed-size segment files plus a
// MANIFEST naming them in order:
//
//	store/
//	  MANIFEST          # "mstore-manifest v1" + one segment name per line
//	  00000001.seg      # sealed (full) segments, fsynced on rotation
//	  00000002.seg
//	  00000003.seg      # the live segment, appended to in place
//
// Each segment opens with an 8-byte magic header and then carries
// length+CRC-framed records (see record.go). Sealed segments are
// immutable and must decode cleanly end to end — any damage is a typed
// ErrCorruptSegment. The live segment is the only file a crash can tear:
// on open, the store scans it to the last whole frame, truncates the torn
// tail, and reports how many trailing bytes were dropped (Recovery).
// Nothing before the tear is ever lost, and a torn tail never panics the
// reader — the crash-recovery property test drives ≥50 randomized
// kill-points through exactly this path.
//
// Reads stream: Records returns an iter.Seq2 that walks the manifest
// order frame by frame, so hours of history replay without loading the
// store into memory. Appends go through a buffered writer; Sync flushes
// and fsyncs, rotation always fsyncs the sealed segment before the
// manifest adds its successor.
package mstore
