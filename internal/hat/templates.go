package hat

// Jacobi2D returns the HAT for the paper's distributed data-parallel
// Jacobi2D code on an n x n grid: a five-point stencil (we charge 10 flop
// per point including loads/stores), 16 bytes of state per point (two
// float64 copies of the grid), and a neighbor border exchange of 8 bytes
// per boundary point per iteration.
func Jacobi2D(n, iterations int) *Template {
	return &Template{
		Name:     "jacobi2d",
		Paradigm: DataParallel,
		Tasks: []Task{{
			Name:         "sweep",
			FlopPerUnit:  10,
			BytesPerUnit: 16,
		}},
		Comms: []Comm{{
			From: "sweep", To: "sweep",
			Pattern:      NeighborExchange,
			BytesPerUnit: 8,
		}},
		Iterations: iterations,
	}
}

// React3D returns the HAT for 3D-REACT (Section 2.2): two functional tasks,
// LHSF production feeding Log-D/ASY consumption through a tunable pipeline
// of 5-20 surface functions per subdomain. Work units are surface
// functions. The Log-D implementation is vector-optimized on the C90 and
// message-passing-optimized on the Paragon, per the paper.
func React3D(surfaceFunctions int) *Template {
	return &Template{
		Name:     "3d-react",
		Paradigm: TaskParallel,
		Tasks: []Task{
			{
				Name:         "lhsf",
				FlopPerUnit:  1.25e10, // ~12.5 Gflop per surface function
				BytesPerUnit: 6.0e6,   // stored surface-function data
				Implementations: map[string]Implementation{
					// LHSF vectorizes well; the MPP port is poor.
					"c90":     {Arch: "c90", SpeedFactor: 1.0},
					"paragon": {Arch: "paragon", SpeedFactor: 0.36},
				},
			},
			{
				Name:         "logd",
				FlopPerUnit:  1.25e10,
				BytesPerUnit: 8.0e6,
				Implementations: map[string]Implementation{
					// Log-D has a vector variant and a (better) MPP variant,
					// "different although functionally equivalent" (2.3).
					"c90":     {Arch: "c90", SpeedFactor: 0.9},
					"paragon": {Arch: "paragon", SpeedFactor: 1.0},
				},
			},
		},
		Comms: []Comm{{
			From: "lhsf", To: "logd",
			Pattern:      PipelineFlow,
			BytesPerUnit: 2.5e6, // surface-function data shipped per unit, bytes
		}},
		Iterations:      surfaceFunctions,
		PipelineUnitMin: 5,
		PipelineUnitMax: 20,
	}
}

// Nile returns the HAT for CLEO/NILE event analysis (Section 2.1):
// independent data-parallel event processing with a gather at the end.
// Work units are events; pass2 records are 20 KB each.
func Nile(events int) *Template {
	return &Template{
		Name:     "cleo-nile",
		Paradigm: DataParallel,
		Tasks: []Task{{
			Name:         "analyze",
			FlopPerUnit:  2.0e5, // per-event histogram/statistics cost, flop
			BytesPerUnit: 20480, // pass2 record: 20 KB/event
		}},
		Comms: []Comm{{
			From: "analyze", To: "analyze",
			Pattern:      GatherScatter,
			BytesPerUnit: 64, // histogram contribution per event
		}},
		Iterations: events,
	}
}
