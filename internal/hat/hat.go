// Package hat implements the Heterogeneous Application Template: the
// interface through which a user describes the structure, characteristics,
// and current implementations of an application to its AppLeS agent
// (Section 3.4 and Section 4.1 of the paper).
//
// Templates carry both implementation-independent attributes (task graph,
// communication pattern, iteration structure) and implementation-dependent
// ones (per-architecture optimized variants, bytes per boundary point,
// pipeline unit bounds).
package hat

import "fmt"

// Paradigm classifies the application's computational structure.
type Paradigm int

const (
	// DataParallel applications decompose a uniform data domain
	// (CLEO/NILE event analysis, Jacobi2D).
	DataParallel Paradigm = iota
	// TaskParallel applications decompose into distinct functional tasks
	// (3D-REACT's LHSF and LogD/ASY).
	TaskParallel
)

// String returns the paradigm name.
func (p Paradigm) String() string {
	switch p {
	case DataParallel:
		return "data-parallel"
	case TaskParallel:
		return "task-parallel"
	default:
		return fmt.Sprintf("paradigm(%d)", int(p))
	}
}

// CommPattern classifies inter-task communication regularity.
type CommPattern int

const (
	// NeighborExchange is the regular border swap of stencil codes.
	NeighborExchange CommPattern = iota
	// PipelineFlow is producer-to-consumer streaming (LHSF -> Log-D).
	PipelineFlow
	// GatherScatter is a distribution/aggregation phase.
	GatherScatter
)

// String returns the pattern name.
func (c CommPattern) String() string {
	switch c {
	case NeighborExchange:
		return "neighbor-exchange"
	case PipelineFlow:
		return "pipeline"
	case GatherScatter:
		return "gather-scatter"
	default:
		return fmt.Sprintf("pattern(%d)", int(c))
	}
}

// Implementation describes one per-architecture optimized variant of a task
// (3D-REACT's Log-D had distinct vector and MPP implementations).
type Implementation struct {
	Arch string
	// SpeedFactor scales the host's nominal Mflop/s for this task: an
	// implementation tuned to the architecture has factor >= 1, a poorly
	// matched fallback < 1.
	SpeedFactor float64
}

// Task describes one logical task of the application.
type Task struct {
	Name string
	// FlopPerUnit is the computation per work unit (per grid point for
	// Jacobi2D, per surface function for LHSF, per event for NILE), in
	// floating-point operations.
	FlopPerUnit float64
	// BytesPerUnit is the memory footprint per work unit.
	BytesPerUnit float64
	// Implementations maps architecture family to the tuned variant; an
	// empty map means a portable implementation with factor 1 everywhere.
	Implementations map[string]Implementation
}

// SpeedFactorOn returns the implementation speed factor for the given
// architecture (1.0 when no tuned variant is declared).
func (t Task) SpeedFactorOn(arch string) float64 {
	if impl, ok := t.Implementations[arch]; ok && impl.SpeedFactor > 0 {
		return impl.SpeedFactor
	}
	return 1
}

// Comm describes one inter-task communication dependence.
type Comm struct {
	From, To string
	Pattern  CommPattern
	// BytesPerUnit is the data volume exchanged per boundary/work unit and
	// per iteration.
	BytesPerUnit float64
}

// Template is the complete HAT for one application.
type Template struct {
	Name     string
	Paradigm Paradigm
	Tasks    []Task
	Comms    []Comm

	// Iterations is the number of synchronous steps the run performs
	// (Jacobi sweeps, pipeline subdomain count, analysis passes).
	Iterations int

	// PipelineUnitMin/Max bound the tunable transfer unit for pipelined
	// codes (3D-REACT used 5-20 surface functions per subdomain).
	PipelineUnitMin, PipelineUnitMax int
}

// Task returns the named task and whether it exists.
func (t *Template) Task(name string) (Task, bool) {
	for _, task := range t.Tasks {
		if task.Name == name {
			return task, true
		}
	}
	return Task{}, false
}

// Validate checks structural consistency: non-empty tasks, comm edges that
// reference declared tasks, positive per-unit costs.
func (t *Template) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("hat: template has no name")
	}
	if len(t.Tasks) == 0 {
		return fmt.Errorf("hat: template %q has no tasks", t.Name)
	}
	names := map[string]bool{}
	for _, task := range t.Tasks {
		if task.Name == "" {
			return fmt.Errorf("hat: template %q has an unnamed task", t.Name)
		}
		if names[task.Name] {
			return fmt.Errorf("hat: template %q duplicates task %q", t.Name, task.Name)
		}
		names[task.Name] = true
		if task.FlopPerUnit < 0 || task.BytesPerUnit < 0 {
			return fmt.Errorf("hat: task %q has negative per-unit costs", task.Name)
		}
	}
	for _, c := range t.Comms {
		if !names[c.From] || !names[c.To] {
			return fmt.Errorf("hat: comm %s->%s references undeclared task", c.From, c.To)
		}
		if c.BytesPerUnit < 0 {
			return fmt.Errorf("hat: comm %s->%s has negative volume", c.From, c.To)
		}
	}
	if t.Iterations < 0 {
		return fmt.Errorf("hat: template %q has negative iteration count", t.Name)
	}
	return nil
}
