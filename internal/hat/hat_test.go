package hat

import (
	"strings"
	"testing"
)

func TestJacobiTemplateValid(t *testing.T) {
	tpl := Jacobi2D(1000, 100)
	if err := tpl.Validate(); err != nil {
		t.Fatal(err)
	}
	if tpl.Paradigm != DataParallel {
		t.Fatalf("jacobi paradigm %v, want data-parallel", tpl.Paradigm)
	}
	task, ok := tpl.Task("sweep")
	if !ok || task.FlopPerUnit <= 0 || task.BytesPerUnit <= 0 {
		t.Fatalf("sweep task malformed: %+v ok=%v", task, ok)
	}
	if tpl.Comms[0].Pattern != NeighborExchange {
		t.Fatalf("jacobi comm pattern %v", tpl.Comms[0].Pattern)
	}
}

func TestReactTemplateValid(t *testing.T) {
	tpl := React3D(120)
	if err := tpl.Validate(); err != nil {
		t.Fatal(err)
	}
	if tpl.Paradigm != TaskParallel {
		t.Fatalf("react paradigm %v, want task-parallel", tpl.Paradigm)
	}
	if tpl.PipelineUnitMin != 5 || tpl.PipelineUnitMax != 20 {
		t.Fatalf("pipeline bounds %d-%d, want 5-20 per the paper",
			tpl.PipelineUnitMin, tpl.PipelineUnitMax)
	}
	lhsf, _ := tpl.Task("lhsf")
	// The paper: each task's implementation is optimized for its machine.
	if lhsf.SpeedFactorOn("c90") <= lhsf.SpeedFactorOn("paragon") {
		t.Fatal("LHSF should run relatively better on the C90")
	}
	logd, _ := tpl.Task("logd")
	if logd.SpeedFactorOn("paragon") <= logd.SpeedFactorOn("c90") {
		t.Fatal("Log-D should run relatively better on the Paragon")
	}
}

func TestNileTemplateValid(t *testing.T) {
	tpl := Nile(1e6)
	if err := tpl.Validate(); err != nil {
		t.Fatal(err)
	}
	task, _ := tpl.Task("analyze")
	if task.BytesPerUnit != 20480 {
		t.Fatalf("NILE event record %v bytes, want 20480 (20 KB pass2)", task.BytesPerUnit)
	}
}

func TestSpeedFactorDefault(t *testing.T) {
	task := Task{Name: "t"}
	if f := task.SpeedFactorOn("anything"); f != 1 {
		t.Fatalf("default speed factor %v, want 1", f)
	}
}

func TestValidateRejectsBadTemplates(t *testing.T) {
	cases := []struct {
		name string
		tpl  Template
		want string
	}{
		{"no name", Template{}, "no name"},
		{"no tasks", Template{Name: "x"}, "no tasks"},
		{"dup task", Template{Name: "x", Tasks: []Task{{Name: "a"}, {Name: "a"}}}, "duplicates"},
		{"bad comm", Template{Name: "x", Tasks: []Task{{Name: "a"}},
			Comms: []Comm{{From: "a", To: "ghost"}}}, "undeclared"},
		{"neg cost", Template{Name: "x", Tasks: []Task{{Name: "a", FlopPerUnit: -1}}}, "negative"},
		{"neg iters", Template{Name: "x", Tasks: []Task{{Name: "a"}}, Iterations: -1}, "negative iteration"},
	}
	for _, c := range cases {
		err := c.tpl.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestStringers(t *testing.T) {
	if DataParallel.String() != "data-parallel" || TaskParallel.String() != "task-parallel" {
		t.Fatal("paradigm strings wrong")
	}
	if NeighborExchange.String() != "neighbor-exchange" ||
		PipelineFlow.String() != "pipeline" ||
		GatherScatter.String() != "gather-scatter" {
		t.Fatal("pattern strings wrong")
	}
	if !strings.Contains(Paradigm(99).String(), "99") {
		t.Fatal("unknown paradigm string")
	}
}
