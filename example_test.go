package apples_test

import (
	"fmt"

	"apples"
)

// ExampleNewAgent schedules a Jacobi2D run on a dedicated testbed, where
// the outcome is deterministic enough to assert.
func ExampleNewAgent() {
	eng := apples.NewEngine()
	tp := apples.SDSCPCL(eng, apples.TestbedOptions{Seed: 1, Quiet: true})

	agent, err := apples.NewAgent(tp, apples.JacobiTemplate(1000, 50),
		&apples.UserSpec{Decomposition: "strip"}, apples.OracleInformation(tp))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sched, err := agent.Schedule(1000)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("candidate sets: %d\n", sched.CandidatesConsidered)
	fmt.Printf("placement covers the domain: %v\n", sched.Placement.TotalPoints() == 1000*1000)
	// Output:
	// candidate sets: 255
	// placement covers the domain: true
}

// ExampleWeightedStrip builds the paper's static non-uniform strip
// partition directly.
func ExampleWeightedStrip() {
	p, err := apples.WeightedStrip(100, []string{"fast", "slow"}, []float64{3, 1}, 8)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("fast share: %.0f%%\n", 100*p.Fraction("fast"))
	// Output:
	// fast share: 75%
}

// ExampleNewReactModel evaluates the 3D-REACT pipeline model for the
// paper's mapping.
func ExampleNewReactModel() {
	tp := apples.CASA(apples.NewEngine())
	tpl := apples.ReactTemplate(600)
	m, err := apples.NewReactModel(tp, tpl, "c90", "paragon", apples.ReactOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	u, t := m.BestUnit(5, 20)
	fmt.Printf("unit in range: %v\n", u >= 5 && u <= 20)
	fmt.Printf("under 5.5 hours: %v\n", t/3600 < 5.5)
	// Output:
	// unit in range: true
	// under 5.5 hours: true
}

// ExampleNewPipelineAgent schedules the 3D-REACT pipeline on the CASA
// testbed through the facade: the agent picks the paper's C90 → Paragon
// mapping over both single-site fallbacks, and ScheduleExplained exposes
// the full candidate ranking in the same Candidate terms as the Jacobi
// agent.
func ExampleNewPipelineAgent() {
	tp := apples.CASA(apples.NewEngine())
	agent, err := apples.NewPipelineAgent(tp, apples.ReactTemplate(600),
		&apples.UserSpec{}, apples.OracleInformation(tp), apples.ReactOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sched, ranked, err := agent.ScheduleExplained(0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("mapping: %s -> %s\n", sched.Producer, sched.Consumer)
	fmt.Printf("unit in range: %v\n", sched.Unit >= 5 && sched.Unit <= 20)
	fmt.Printf("mappings considered: %d\n", sched.CandidatesConsidered)
	fmt.Printf("best candidate hosts: %v\n", ranked[0].Hosts)
	// Output:
	// mapping: c90 -> paragon
	// unit in range: true
	// mappings considered: 4
	// best candidate hosts: [c90 paragon]
}

// ExampleNewForecasterBank shows dynamic predictor selection converging
// on a constant series.
func ExampleNewForecasterBank() {
	bank := apples.NewForecasterBank()
	for i := 0; i < 30; i++ {
		bank.Update(0.5)
	}
	v, _, ok := bank.Forecast()
	fmt.Printf("forecast %.1f ok=%v\n", v, ok)
	// Output:
	// forecast 0.5 ok=true
}
