// Package apples is a Go reproduction of "Scheduling from the Perspective
// of the Application" (Berman & Wolski, HPDC 1996): AppLeS
// application-level scheduling agents, the Network Weather Service they
// draw forecasts from, and the simulated heterogeneous metacomputer the
// experiments run on.
//
// The package is a facade over the implementation in internal/; it
// re-exports the supported surface:
//
//   - a deterministic discrete-event engine (NewEngine) and the paper's
//     testbeds (SDSCPCL, CASA);
//   - ambient load generators for non-dedicated resources;
//   - the Network Weather Service (NewNWS) with its forecaster bank;
//   - Heterogeneous Application Templates for the three applications the
//     paper discusses (JacobiTemplate, ReactTemplate, NileTemplate);
//   - the AppLeS agent itself (NewAgent) with NWS, oracle, and static
//     information sources;
//   - the applications: distributed Jacobi2D execution (RunJacobi), the
//     3D-REACT pipeline (react functions), and CLEO/NILE event analysis
//     (nile functions).
//
// See README.md for a walkthrough and DESIGN.md / EXPERIMENTS.md for the
// experiment inventory.
package apples

import (
	"io"

	"apples/internal/core"
	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/jacobi"
	"apples/internal/load"
	"apples/internal/mstore"
	"apples/internal/nile"
	"apples/internal/nws"
	"apples/internal/obs"
	"apples/internal/obs/audit"
	"apples/internal/obs/obshttp"
	"apples/internal/partition"
	"apples/internal/react"
	"apples/internal/rms"
	"apples/internal/sim"
	"apples/internal/userspec"
)

// Simulation engine and load generation.
type (
	// Engine is the deterministic discrete-event simulator all components
	// run on.
	Engine = sim.Engine
	// Rand is the seeded random source used by load generators.
	Rand = sim.Rand
	// LoadSource is a piecewise-constant ambient load process.
	LoadSource = load.Source
	// LoadStep is one segment of an explicit load trace.
	LoadStep = load.Step
)

// NewEngine returns a fresh simulation engine with the clock at zero.
func NewEngine() *Engine { return sim.NewEngine() }

// NewRand returns a deterministic random stream.
func NewRand(seed int64) *Rand { return sim.NewRand(seed) }

// Load trace file I/O (import measured contention, export generated
// scenarios).
var (
	// ParseLoadTrace reads a "time value" text trace.
	ParseLoadTrace = load.ParseTrace
	// WriteLoadTrace writes a trace in the same format.
	WriteLoadTrace = load.WriteTrace
	// RecordLoadSource samples a generator into an explicit trace.
	RecordLoadSource = load.RecordSource
)

// Load generators for non-dedicated resources.
var (
	// NewOnOffLoad alternates idle and busy periods (interactive users).
	NewOnOffLoad = load.NewOnOff
	// NewAR1Load is autocorrelated wandering load (Unix run queues).
	NewAR1Load = load.NewAR1
	// NewPeriodicLoad is diurnal-style sinusoidal load.
	NewPeriodicLoad = load.NewPeriodic
	// NewSpikeLoad adds batch-job spikes over a baseline.
	NewSpikeLoad = load.NewSpikes
	// NewTraceLoad replays an explicit piecewise-constant trace.
	NewTraceLoad = load.NewTrace
	// ConstantLoad is a fixed level forever.
	ConstantLoad = func(v float64) LoadSource { return load.Constant(v) }
)

// Metacomputer model.
type (
	// Topology is the wired metacomputer: hosts, links, routes.
	Topology = grid.Topology
	// Host is one machine with speed, memory, and ambient load.
	Host = grid.Host
	// Link is one shared network segment.
	Link = grid.Link
	// HostSpec declares a host for Topology.AddHost.
	HostSpec = grid.HostSpec
	// LinkSpec declares a link for Topology.AddLink.
	LinkSpec = grid.LinkSpec
	// TestbedOptions configures the paper testbed builders.
	TestbedOptions = grid.TestbedOptions
)

// NewTopology returns an empty metacomputer on the engine.
func NewTopology(eng *Engine) *Topology { return grid.NewTopology(eng) }

// SDSCPCL builds the Figure 2 testbed (with options for dedicated mode and
// the Figure 6 SP-2 extension).
func SDSCPCL(eng *Engine, opt TestbedOptions) *Topology { return grid.SDSCPCL(eng, opt) }

// CASA builds the dedicated C90 + Paragon pair 3D-REACT ran on.
func CASA(eng *Engine) *Topology { return grid.CASA(eng) }

// Network Weather Service.
type (
	// NWS is a Network Weather Service instance: sensors plus forecasts.
	NWS = nws.Service
	// Forecaster is one online predictor in a bank.
	Forecaster = nws.Forecaster
	// ForecasterBank performs dynamic MSE-based predictor selection.
	ForecasterBank = nws.Bank
	// NWSOption configures an NWS instance at construction.
	NWSOption = nws.ServiceOption
)

// NewNWS creates a service sampling every period seconds of virtual time.
func NewNWS(eng *Engine, period float64, opts ...NWSOption) *NWS {
	return nws.NewService(eng, period, opts...)
}

// WithNWSRetention caps how many raw measurements per watched series the
// service retains for snapshots (forecaster banks still see everything).
func WithNWSRetention(n int) NWSOption { return nws.WithRetention(n) }

// WithNWSBankFactory replaces the forecaster bank new sensors start with.
func WithNWSBankFactory(mk func() *ForecasterBank) NWSOption { return nws.WithBankFactory(mk) }

// NewForecasterBank builds a predictor bank (the standard NWS set when
// called with no arguments).
func NewForecasterBank(fcs ...Forecaster) *ForecasterBank { return nws.NewBank(fcs...) }

// NWSSnapshot is the serializable sensor history of an NWS instance.
type NWSSnapshot = nws.Snapshot

// ReadNWSSnapshot deserializes a snapshot written by Snapshot.WriteTo.
func ReadNWSSnapshot(r io.Reader) (*NWSSnapshot, error) { return nws.ReadSnapshot(r) }

// Durable measurement history: an append-only segment/WAL store shared
// by NWS sensing, load traces, and replay experiments.
type (
	// MeasurementStore is a crash-safe append-only store of measurement
	// records, organised as CRC-framed fixed-size segments.
	MeasurementStore = mstore.Store
	// MeasurementRecord is one stored sample: kind, series, tick, value.
	MeasurementRecord = mstore.Record
	// MeasurementKind tags what a record measures (CPU, bandwidth, load).
	MeasurementKind = mstore.Kind
	// StoreOption configures OpenMeasurementStore.
	StoreOption = mstore.Option
	// StoreRecovery reports what reopening a store after a crash found.
	StoreRecovery = mstore.Recovery
	// LoadTraceStore reads and writes load traces in the store format.
	LoadTraceStore = load.TraceFile
)

// Measurement record kinds.
const (
	KindCPU       = mstore.KindCPU
	KindBandwidth = mstore.KindBandwidth
	KindLoad      = mstore.KindLoad
)

// OpenMeasurementStore opens (creating if needed) a store directory.
func OpenMeasurementStore(dir string, opts ...StoreOption) (*MeasurementStore, error) {
	return mstore.Open(dir, opts...)
}

// StoreReadOnly opens a store for reading only: no files are created or
// repaired, and Append fails.
func StoreReadOnly() StoreOption { return mstore.ReadOnly() }

// WithStoreMetrics registers the store's segment gauge, byte counter,
// and append-latency histogram on the registry.
func WithStoreMetrics(m *Metrics) StoreOption { return mstore.WithMetrics(m) }

// WithNWSStore makes an NWS instance append every observed sample to
// the store; pair with NWS.RestoreFromStore to warm-start forecaster
// banks bit-identically across restarts.
func WithNWSStore(st *MeasurementStore) NWSOption { return nws.WithStore(st) }

// Application templates (HAT) and user specifications (US).
type (
	// Template is a Heterogeneous Application Template.
	Template = hat.Template
	// UserSpec carries the user's metric, access rights, and preferences.
	UserSpec = userspec.Spec
)

// Performance metrics for UserSpec.Metric.
const (
	MinExecutionTime = userspec.MinExecutionTime
	MaxSpeedup       = userspec.MaxSpeedup
	MinCost          = userspec.MinCost
)

// JacobiTemplate is the HAT for the n x n Jacobi2D code.
func JacobiTemplate(n, iterations int) *Template { return hat.Jacobi2D(n, iterations) }

// ReactTemplate is the HAT for 3D-REACT with the given surface-function
// count.
func ReactTemplate(surfaceFunctions int) *Template { return hat.React3D(surfaceFunctions) }

// NileTemplate is the HAT for CLEO/NILE event analysis.
func NileTemplate(events int) *Template { return hat.Nile(events) }

// The AppLeS agent.
type (
	// Agent is an application-level scheduler for one application. Its
	// Candidates(n, k) accessor returns the top-k evaluated resource sets
	// sorted ascending by score without committing to a schedule;
	// ScheduleExplained(n, k) returns both the chosen schedule and that
	// ranking.
	Agent = core.Agent
	// AgentSchedule is the coordinator's chosen schedule.
	AgentSchedule = core.Schedule
	// AgentOption configures NewAgent (see WithSpillFactor,
	// WithParallelism, WithPruning, WithInfoSnapshot).
	AgentOption = core.AgentOption
	// Candidate is one evaluated resource set or pipeline mapping, the
	// shared explain currency of Agent.ScheduleExplained/Candidates and
	// PipelineAgent.ScheduleExplained/Candidates.
	Candidate = core.Candidate
	// Information is the agent's dynamic-information source.
	Information = core.Information
	// InfoSnapshot is an immutable point-in-time resolution of an
	// Information source (the agent takes one per scheduling round).
	InfoSnapshot = core.InfoSnapshot
	// Actuator implements a schedule on the target system.
	Actuator = core.Actuator
	// ActuatorFunc adapts a function to Actuator.
	ActuatorFunc = core.ActuatorFunc
	// Placement is a data decomposition over hosts.
	Placement = partition.Placement
)

// NewAgent assembles an AppLeS from its information pool. Options tune
// the candidate-evaluation engine; by default the agent snapshots its
// information source once per round and evaluates candidate sets on a
// GOMAXPROCS-wide worker pool, making exactly the decision sequential
// evaluation would.
func NewAgent(tp *Topology, tpl *Template, spec *UserSpec, info Information, opts ...AgentOption) (*Agent, error) {
	return core.NewAgent(tp, tpl, spec, info, opts...)
}

// Agent construction options.
var (
	// WithSpillFactor sets the estimator's out-of-memory penalty
	// (replaces writing the deprecated Agent.SpillFactor field).
	WithSpillFactor = core.WithSpillFactor
	// WithParallelism bounds the evaluation worker pool (0 = GOMAXPROCS,
	// 1 = sequential).
	WithParallelism = core.WithParallelism
	// WithPruning enables best-so-far candidate pruning.
	WithPruning = core.WithPruning
	// WithInfoSnapshot toggles the per-round information snapshot
	// (default on; disable only for ablation).
	WithInfoSnapshot = core.WithInfoSnapshot
	// WithSelector picks the resource-selector family an agent enumerates
	// candidates with (exhaustive below 2^12, or the greedy / beam / LP+GA
	// heuristics that scale to thousand-host pools).
	WithSelector = core.WithSelector
)

// Resource-selector families (the "scaling past the 2^n wall" surface).
type (
	// SelectorKind names a selector family for SelectorSpec.Kind.
	SelectorKind = core.SelectorKind
	// SelectorSpec configures the selector family an agent uses; the zero
	// value means the default exhaustive/prefix behavior.
	SelectorSpec = core.SelectorSpec
)

// Selector kinds for SelectorSpec.Kind.
const (
	// SelectorExhaustive enumerates every subset on small pools (the
	// default, exact up to 12 hosts; desirability prefixes beyond).
	SelectorExhaustive = core.SelectorExhaustive
	// SelectorGreedy grows sets by marginal gain over host desirability.
	SelectorGreedy = core.SelectorGreedy
	// SelectorBeam runs a width-W beam search over add/drop/swap moves.
	SelectorBeam = core.SelectorBeam
	// SelectorLPGA seeds a genetic search from an LP-style relaxation.
	SelectorLPGA = core.SelectorLPGA
)

// ParseSelector parses a -selector flag value ("exhaustive", "greedy",
// "beam", "lpga") into a SelectorSpec.
var ParseSelector = core.ParseSelector

// SnapshotInformation freezes an Information source over a host set.
var SnapshotInformation = core.SnapshotInformation

// Delta-aware rescheduling (the kHz-rate loop).
type (
	// ReschedSession is the incremental form of Agent.Schedule for
	// applications that re-ask the scheduling question at high rates: it
	// freezes the candidate universe once (bitmasks over the pool
	// ordering), then each Round() re-plans only candidates touched by
	// changed hosts or links, carrying the incumbent forward. A round
	// that observes no change is allocation-free. Create one with
	// Agent.NewReschedSession(n).
	ReschedSession = core.ReschedSession
	// DeltaStats describes what one session round did: hosts/links
	// changed, candidates rescored vs considered, incumbent carried.
	DeltaStats = core.DeltaStats
)

// NewOverlayInformation layers a live per-host availability override map
// on an Information source — the driver for delta-rescheduling tests,
// benchmarks, and churn experiments.
var NewOverlayInformation = core.NewOverlayInformation

// Multi-tenant scheduling service (the shared daemon behind
// `apples -serve`). Agents and rescheduling sessions register as
// tenants; the service shares one frozen information snapshot across
// concurrent tenant rounds (copy-on-write), meters the evaluation
// worker pool under one service-wide budget, and admission-controls
// submissions behind a bounded queue.
type (
	// SchedService is the shared scheduling daemon: registered tenants
	// submit rounds, runners serve them with per-tenant FIFO ordering,
	// and concurrent rounds over the same (information, pool) share one
	// snapshot.
	SchedService = core.SchedService
	// SchedTenant is one registered client of a SchedService (an Agent
	// or a ReschedSession).
	SchedTenant = core.Tenant
	// SchedServiceOption configures NewSchedService.
	SchedServiceOption = core.ServiceOption
	// SchedRoundResult is one completed service round.
	SchedRoundResult = core.RoundResult
	// SchedTenantStatus is the /tenants table row for one tenant.
	SchedTenantStatus = core.TenantStatus
)

// NewSchedService builds the shared scheduling daemon.
func NewSchedService(opts ...SchedServiceOption) *SchedService { return core.NewSchedService(opts...) }

// Scheduling-service construction options.
var (
	// WithQueueDepth bounds the admission queue; submissions beyond it
	// fail fast with ErrSchedQueueFull.
	WithQueueDepth = core.WithQueueDepth
	// WithServiceRunners sets how many rounds the service serves
	// concurrently (default GOMAXPROCS).
	WithServiceRunners = core.WithServiceRunners
	// WithServiceBudget caps the service-wide evaluation worker pool
	// shared by all concurrent rounds (default GOMAXPROCS).
	WithServiceBudget = core.WithServiceBudget
	// WithServiceMetrics registers the service's queue, snapshot, and
	// per-tenant round instruments in a shared registry.
	WithServiceMetrics = core.WithServiceMetrics
	// WithServiceTracer streams tenant_round events to a trace sink.
	WithServiceTracer = core.WithServiceTracer
)

// Scheduling-service sentinel errors.
var (
	// ErrSchedQueueFull: the admission queue is at capacity; back off
	// and retry.
	ErrSchedQueueFull = core.ErrQueueFull
	// ErrSchedServiceClosed: the service has been closed.
	ErrSchedServiceClosed = core.ErrServiceClosed
)

// ServeScheduler starts the service HTTP front end on addr (":0" picks
// an ephemeral port): /schedule runs one tenant round, /tenants serves
// the tenant table, and the observability endpoints (/metrics,
// /trace/recent, /healthz, /debug/pprof) ride along. Stop it with
// Close; closing the server does not close the service.
func ServeScheduler(addr string, svc *SchedService, m *Metrics, ring *RingTracer, opts ...ObsServeOption) (*ObsServer, error) {
	return obshttp.ServeService(addr, svc, m, ring, opts...)
}

// Observability: decision traces and metrics (internal/obs). A nil
// Tracer or Metrics means "off" and costs the instrumented hot paths a
// single pointer check.
type (
	// Tracer receives structured decision-trace events; implementations
	// must tolerate concurrent Emit calls.
	Tracer = obs.Tracer
	// TracerFunc adapts a function to Tracer.
	TracerFunc = obs.TracerFunc
	// TraceEvent is one record of a decision trace (snapshot built,
	// candidate evaluated/pruned, winner chosen, verdicts).
	TraceEvent = obs.Event
	// TraceEventType tags a TraceEvent.
	TraceEventType = obs.EventType
	// JSONLTracer writes events as JSON lines (the -trace file format).
	JSONLTracer = obs.JSONLTracer
	// TraceCollector buffers events in memory for inspection.
	TraceCollector = obs.Collector
	// MultiTracer fans events out to several sinks.
	MultiTracer = obs.MultiTracer
	// RingTracer is a bounded in-memory sink retaining the last N events
	// (the /trace/recent backing store).
	RingTracer = obs.RingTracer
	// Metrics is a registry of atomic counters, gauges, and fixed-bucket
	// histograms shared across subsystems.
	Metrics = obs.Metrics
	// Counter, Gauge, and Histogram are the registry's instrument
	// handles (Histogram carries bucket counts plus Quantile estimation).
	Counter   = obs.Counter
	Gauge     = obs.Gauge
	Histogram = obs.Histogram
	// StageTimer hands out stage-latency Spans recording into per-stage
	// histograms (and the trace, when built with a tracer).
	StageTimer = obs.StageTimer
	// Span is one in-flight stage measurement; End closes it.
	Span = obs.Span
	// ObsServer is a running HTTP observability listener
	// (/metrics, /healthz, /trace/recent, /debug/pprof).
	ObsServer = obshttp.Server
)

// NewJSONLTracer returns a tracer emitting one JSON object per line.
func NewJSONLTracer(w io.Writer) *JSONLTracer { return obs.NewJSONLTracer(w) }

// NewTraceCollector returns an empty in-memory trace sink.
func NewTraceCollector() *TraceCollector { return obs.NewCollector() }

// NewRingTracer returns a bounded trace sink retaining the last n
// events; attach it alongside other sinks (MultiTracer) to keep a live
// window a long run can serve from /trace/recent without growing.
func NewRingTracer(n int) *RingTracer { return obs.NewRingTracer(n) }

// NewStageTimer builds a stage timer over a registry: spans observe
// into `sched_stage_seconds{stage="..."}` histograms, and a non-nil
// tracer additionally receives one EvSpan event per closed span. The
// clock is injectable (monotonic seconds) for deterministic tests and
// simulations; nil uses the real monotonic clock.
func NewStageTimer(m *Metrics, tr Tracer, clock func() float64) *StageTimer {
	return obs.NewStageTimer(m, tr, clock)
}

// ServeObservability starts the HTTP observability server on addr
// (":0" picks an ephemeral port): /metrics serves the registry in
// Prometheus text format, /trace/recent the ring's latest events as
// JSON, /healthz a liveness probe, and /debug/pprof the Go profiler.
// Either registry or ring may be nil; the matching endpoint then
// reports 404. Stop it with Close. Options add component health checks
// (WithObsComponent) and the audit endpoints (WithObsAudit).
func ServeObservability(addr string, m *Metrics, ring *RingTracer, opts ...ObsServeOption) (*ObsServer, error) {
	return obshttp.Serve(addr, m, ring, opts...)
}

// Forecast & decision quality auditing (internal/obs/audit): the
// closing-the-loop subsystem joining each scheduling round's
// completion-time prediction with the observed actual, scoring every
// forecaster against the naive last-value baseline, and flipping
// drifting series into degraded on /healthz. A nil engine is off
// everywhere and costs one pointer check.
type (
	// AuditEngine is the online predicted-vs-actual audit engine.
	AuditEngine = audit.Engine
	// AuditOption configures NewAuditEngine.
	AuditOption = audit.Option
	// AuditSnapshot is the decision-quality report (/audit).
	AuditSnapshot = audit.Snapshot
	// AuditSeriesReport is one series' forecaster skill report
	// (/audit/series).
	AuditSeriesReport = audit.SeriesReport
	// ObsServeOption configures ServeObservability / ServeScheduler.
	ObsServeOption = obshttp.ServeOption
)

// NewAuditEngine returns an audit engine; see AuditOption constructors
// for metrics, tracing, and drift-detector tuning.
func NewAuditEngine(opts ...AuditOption) *AuditEngine { return audit.New(opts...) }

// WithAuditMetrics publishes the engine's counters and the
// sched_prediction_error_seconds / nws_forecast_skill /
// audit_drift_alarms_total families into a shared registry.
func WithAuditMetrics(m *Metrics) AuditOption { return audit.WithMetrics(m) }

// WithAuditTracer emits one EvAudit trace event per join and per drift
// alarm.
func WithAuditTracer(tr Tracer) AuditOption { return audit.WithTracer(tr) }

// WithAuditPageHinkley tunes the drift detector (tolerance delta,
// alarm threshold lambda, warmup minSamples).
func WithAuditPageHinkley(delta, lambda float64, minSamples int) AuditOption {
	return audit.WithPageHinkley(delta, lambda, minSamples)
}

// Audit wiring into the agent, the NWS, and the observability server.
var (
	// WithAudit makes an agent's Run join its winning prediction with
	// the measured execution time in the audit engine.
	WithAudit = core.WithAudit
	// WithAuditTenant labels the agent's joins in the per-tenant
	// breakdown.
	WithAuditTenant = core.WithAuditTenant
	// WithObsAudit mounts /audit and /audit/series on the observability
	// server and folds the engine's drift state into /healthz.
	WithObsAudit = obshttp.WithAudit
	// WithObsComponent adds a named component health check to /healthz.
	WithObsComponent = obshttp.WithComponent
)

// WithNWSResiduals streams every sensor sample's forecaster residuals
// into the audit engine — each ready forecaster's standing one-step
// prediction scored against the value that actually arrived.
func WithNWSResiduals(aud *AuditEngine) NWSOption { return nws.WithResiduals(aud) }

// AuditMeasurementStore replays every sensor record in a measurement
// store through fresh forecaster banks into the audit engine — the
// offline counterpart of WithNWSResiduals, reproducing exactly the
// residual stream the live sweep emitted. Returns how many sensor
// records were audited.
func AuditMeasurementStore(st *MeasurementStore, aud *AuditEngine) (int, error) {
	return nws.AuditStore(st, aud, nil)
}

// NewMetrics returns an empty metrics registry. Hand the same registry
// to WithMetrics, WithNWSMetrics, and Engine.SetMetrics to aggregate one
// run's counters in one place, then render it with Metrics.WriteTo.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// Observability wiring for the agent and the NWS.
var (
	// WithTracer streams every scheduling-round decision step of an
	// agent (or coordinator) to a trace sink.
	WithTracer = core.WithTracer
	// WithMetrics registers the agent's round counters and latency
	// histograms in a shared registry.
	WithMetrics = core.WithMetrics
	// WithStageTiming attaches a stage timer: every round records
	// per-stage latency spans (snapshot/select/plan_estimate/reduce,
	// plus actuate in Run).
	WithStageTiming = core.WithStageTiming
)

// WithNWSMetrics registers an NWS instance's sensing counters
// (bank updates, sensor sweeps) in a shared registry.
func WithNWSMetrics(m *Metrics) NWSOption { return nws.WithMetrics(m) }

// WithNWSStageTiming times each NWS batch sensor sweep as a
// sensor_sweep stage span on the given timer.
func WithNWSStageTiming(st *StageTimer) NWSOption { return nws.WithStageTiming(st) }

// Sentinel errors, for errors.Is instead of string matching.
var (
	// ErrNoFeasibleHosts: the user specification filters out every host.
	ErrNoFeasibleHosts = core.ErrNoFeasibleHosts
	// ErrNoFeasiblePlan: no candidate produced a feasible plan.
	ErrNoFeasiblePlan = core.ErrNoFeasiblePlan
	// ErrBadTemplate: the template does not fit the agent blueprint.
	ErrBadTemplate = core.ErrBadTemplate
)

// Pipeline blueprint (the Section 4.2 agent for 3D-REACT-shaped codes).
type (
	// PipelineAgent schedules two-task pipelined applications. Like
	// Agent, it exposes Candidates(k) and ScheduleExplained(k) returning
	// the shared Candidate ranking (single-site mappings have one host,
	// pipeline mappings [producer, consumer] plus the tuned Unit).
	PipelineAgent = core.PipelineAgent
	// PipelineSchedule is its chosen mapping + pipeline unit.
	PipelineSchedule = core.PipelineSchedule
)

// NewPipelineAgent assembles a pipeline-blueprint AppLeS. It shares the
// Agent's evaluation engine and accepts the same options (WithParallelism,
// WithInfoSnapshot; the pipeline blueprint has no spill model or pruning
// bound, so WithSpillFactor and WithPruning are no-ops).
func NewPipelineAgent(tp *Topology, tpl *Template, spec *UserSpec, info Information, opt ReactOptions, opts ...AgentOption) (*PipelineAgent, error) {
	return core.NewPipelineAgent(tp, tpl, spec, info, opt, opts...)
}

// Generic Coordinator blueprint, for assembling a custom agent paradigm
// (a third blueprint beyond Agent and PipelineAgent) out of pluggable
// subsystems. See DESIGN.md §9 for a walkthrough.
type (
	// Coordinator owns the generic scheduling round: per-round
	// information snapshot, bounded parallel fan-out, optional
	// selection-preserving pruning, deterministic (score, index) reduce.
	Coordinator = core.Coordinator
	// CoordinatorRound is one round handed to Coordinator.EvaluateRound:
	// the filtered host pool plus the factories binding the
	// application-specific subsystems to the round's information view.
	CoordinatorRound = core.Round
	// ResourceSelector streams candidate resource sets for a round.
	ResourceSelector = core.ResourceSelector
	// ResourceSelectorFunc adapts a slice-returning function to the
	// streaming ResourceSelector interface.
	ResourceSelectorFunc = core.ResourceSelectorFunc
	// SelectorStreamFunc adapts a sequence-returning function directly to
	// ResourceSelector, for selectors that are naturally streaming.
	SelectorStreamFunc = core.SelectorStreamFunc
	// TruncationReporter is implemented by selectors that cap their
	// enumeration; the Coordinator surfaces capped rounds in traces and
	// the sched_selector_truncated_total counter.
	TruncationReporter = core.TruncationReporter
	// CandidateEvaluator is the fused Planner + Performance Estimator.
	CandidateEvaluator = core.CandidateEvaluator
	// CandidateEvaluatorFunc adapts a function to CandidateEvaluator.
	CandidateEvaluatorFunc = core.CandidateEvaluatorFunc
	// LowerBounder supplies the never-overestimating pruning bound.
	LowerBounder = core.LowerBounder
	// LowerBoundFunc adapts a function to LowerBounder.
	LowerBoundFunc = core.LowerBoundFunc
)

// NewCoordinator builds a coordinator over an information source, for
// custom blueprint agents. It accepts the same options as NewAgent.
func NewCoordinator(info Information, opts ...AgentOption) *Coordinator {
	return core.NewCoordinator(info, opts...)
}

// Information sources for the agent.
var (
	// NWSInformation backs the agent with NWS forecasts (production).
	NWSInformation = core.NWSInformation
	// OracleInformation backs it with perfect knowledge (ablation).
	OracleInformation = core.OracleInformation
	// StaticInformation backs it with compile-time assumptions (ablation).
	StaticInformation = core.StaticInformation
)

// Decompositions (the baselines of Figures 4-6).
var (
	// UniformStrip splits the domain into equal row bands.
	UniformStrip = partition.UniformStrip
	// WeightedStrip assigns bands proportional to weights (static
	// non-uniform strip, Figure 4).
	WeightedStrip = partition.WeightedStrip
	// BlockedPartition is the HPF-style uniform 2D decomposition.
	BlockedPartition = partition.Blocked
	// BlockCyclicPartition is the HPF CYCLIC(k) row distribution.
	BlockCyclicPartition = partition.BlockCyclic
	// ReadPlacement loads a placement serialized with Placement.WriteTo.
	ReadPlacement = partition.ReadPlacement
)

// Jacobi2D execution.
type (
	// JacobiConfig parameterizes a simulated Jacobi2D run.
	JacobiConfig = jacobi.Config
	// JacobiResult reports a completed run.
	JacobiResult = jacobi.Result
	// JacobiAdaptiveConfig adds rescheduling points to a run.
	JacobiAdaptiveConfig = jacobi.AdaptiveConfig
	// JacobiAdaptiveResult adds redistribution accounting.
	JacobiAdaptiveResult = jacobi.AdaptiveResult
	// ReplanFunc is consulted at rescheduling points; Agent.Rescheduler
	// returns the paper's Section 3.2 policy.
	ReplanFunc = jacobi.ReplanFunc
)

// RunJacobi executes a placement on the topology.
func RunJacobi(tp *Topology, p *Placement, cfg JacobiConfig) (*JacobiResult, error) {
	return jacobi.Run(tp, p, cfg)
}

// StartJacobi begins a run asynchronously (several applications can share
// the metacomputer; whenDone fires at completion).
func StartJacobi(tp *Topology, p *Placement, cfg JacobiConfig, whenDone func(*JacobiResult)) error {
	return jacobi.Start(tp, p, cfg, whenDone)
}

// Wait-or-run (Section 3.2's dedicated-access decision).
type (
	// DedicatedOffer is a batch-queue offer of dedicated hosts after a
	// forecast wait.
	DedicatedOffer = core.DedicatedOffer
	// WaitOrRunDecision compares waiting for dedicated access against
	// running shared now.
	WaitOrRunDecision = core.WaitOrRunDecision
)

// RunJacobiAdaptive executes a placement with mid-run redistribution: the
// Replan hook is consulted every CheckEvery iterations, and accepted
// placements pay their migration traffic through the simulated network.
func RunJacobiAdaptive(tp *Topology, p *Placement, cfg JacobiAdaptiveConfig) (*JacobiAdaptiveResult, error) {
	return jacobi.RunAdaptive(tp, p, cfg)
}

// JacobiActuator adapts RunJacobi to the agent's Actuator interface.
func JacobiActuator(tp *Topology, cfg JacobiConfig) Actuator {
	return core.ActuatorFromJacobi(tp, cfg)
}

// RMSActuator actuates schedules through the PVM-style rms substrate
// (message-passing borders, explicit barrier protocol).
func RMSActuator(tp *Topology, cfg JacobiConfig) Actuator {
	return core.ActuatorFromRMS(tp, cfg)
}

// RunJacobiViaRMS executes a placement through the rms substrate.
func RunJacobiViaRMS(tp *Topology, p *Placement, cfg JacobiConfig) (*JacobiResult, error) {
	return jacobi.RunViaRMS(tp, p, cfg)
}

// 3D-REACT (task-parallel pipeline).
type (
	// ReactOptions tunes the pipeline model.
	ReactOptions = react.Options
	// ReactResult reports an executed pipeline run.
	ReactResult = react.Result
	// ReactModel is the analytic pipeline performance model.
	ReactModel = react.Model
)

// React pipeline entry points.
var (
	// RunReactPipeline executes the two-task pipeline.
	RunReactPipeline = react.RunPipeline
	// RunReactSingleSite executes the sequential single-machine variant.
	RunReactSingleSite = react.RunSingleSite
	// NewReactModel builds the analytic model for a mapping.
	NewReactModel = react.NewModel
	// ChooseReactMapping picks the better task-to-machine mapping.
	ChooseReactMapping = react.ChooseMapping
	// PredictChain models an N-stage heterogeneous pipeline.
	PredictChain = react.PredictChain
	// RunChain executes an N-stage pipeline on the metacomputer.
	RunChain = react.RunChain
)

// ChainStage is one stage of an N-stage pipeline (instrument ->
// preprocessor -> supercomputer couplings, per the paper's introduction).
type ChainStage = react.ChainStage

// CLEO/NILE event analysis.
type (
	// NileDataset is an event collection at a data site.
	NileDataset = nile.Dataset
	// NileJob is a physicist's repeated analysis.
	NileJob = nile.Job
	// NileStrategy selects remote, skim, or at-data execution.
	NileStrategy = nile.Strategy
	// NileResult reports an executed analysis.
	NileResult = nile.Result
	// SiteManager predicts and picks analysis strategies.
	SiteManager = nile.SiteManager
)

// NILE strategies.
const (
	NileRemote = nile.Remote
	NileSkim   = nile.Skim
	NileAtData = nile.AtData
)

// PVM-style resource-management substrate (what AppLeS actuates through).
type (
	// RMSMachine is a PVM-style virtual machine over the metacomputer.
	RMSMachine = rms.Machine
	// RMSTask is one spawned task.
	RMSTask = rms.Task
	// RMSMessage is one delivered message.
	RMSMessage = rms.Message
)

// RMS entry points.
var (
	// NewRMS builds a virtual machine over a topology.
	NewRMS = rms.New
	// RunMasterWorker farms self-scheduled chunks over workers.
	RunMasterWorker = rms.RunMasterWorker
	// RunRing passes a token around a host ring (a network microbench).
	RunRing = rms.RunRing
)

// NILE entry points.
var (
	// RunNile executes one strategy for a job.
	RunNile = nile.Execute
	// NewSiteManager builds the strategy-choosing site manager.
	NewSiteManager = nile.NewSiteManager
	// RunNileDistributed analyzes a sharded catalog in place, in parallel.
	RunNileDistributed = nile.ExecuteDistributed
	// NileCentralizedBaseline streams everything to one host instead.
	NileCentralizedBaseline = nile.CentralizedBaseline
	// NileJobFromTemplate derives a job from the CLEO/NILE HAT.
	NileJobFromTemplate = nile.JobFromTemplate
)
