GO ?= go

.PHONY: all build test race vet cover fuzz bench bench-evaluate bench-pipeline bench-selector bench-resched bench-service bench-nws bench-json tables clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race coverage of the parallel candidate-evaluation engine. The core
# package holds the worker pool, snapshot, and determinism tests; the
# root package exercises the facade against the same engine.
race:
	$(GO) test -race ./internal/core/... ./internal/mstore/... .

vet:
	$(GO) vet ./...

# Coverage over the decision-critical packages (CI enforces a 70% floor).
cover:
	$(GO) test -coverprofile=cover.out ./internal/core ./internal/nws ./internal/obs ./internal/obs/audit ./internal/mstore
	$(GO) tool cover -func=cover.out | tail -1

# Short fuzz probe of the serialization decoders; the committed corpora
# under testdata/fuzz replay as regular tests on every `make test`.
fuzz:
	$(GO) test -fuzz=FuzzReadPlacement -fuzztime=10s ./internal/partition
	$(GO) test -fuzz=FuzzReadSnapshot -fuzztime=10s ./internal/nws
	$(GO) test -fuzz=FuzzSegmentDecode -fuzztime=10s ./internal/mstore

# Full reproduction benchmarks (paper figures + ablations).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Candidate-evaluation engine sweep only: pool size x evaluation mode.
bench-evaluate:
	$(GO) test -bench=BenchmarkEvaluate -benchmem -benchtime=3x .

# Pipeline-blueprint evaluation sweep: pool size x worker-pool width,
# through the same shared Coordinator as bench-evaluate.
bench-pipeline:
	$(GO) test -bench=BenchmarkPipelineEvaluate -benchmem -benchtime=3x .

# Selector-family sweep past the 2^n wall: 128/512/2048-host grids
# under exhaustive, greedy, beam, and LP+GA selection.
bench-selector:
	$(GO) test -bench=BenchmarkSelect -benchmem -benchtime=3x -run '^$$' .

# Delta-aware rescheduling loop: full per-tick round vs session cold
# start vs one-host delta vs quiescent steady state (which must report
# 0 allocs/op — the gate TestSessionSteadyStateAllocFree enforces).
bench-resched:
	$(GO) test -bench=BenchmarkResched -benchmem -benchtime=3x -run '^$$' .

# Multi-tenant serving: 64 agents round-robin through one SchedService,
# copy-on-write snapshot sharing, greedy vs exhaustive selection.
bench-service:
	$(GO) test -bench=BenchmarkService -benchmem -benchtime=3x -run '^$$' .

# NWS sensing hot path: bank update sweep (window x legacy/incremental)
# and full-service sweep cost at 100/1k/10k watched series.
bench-nws:
	$(GO) test -bench='BenchmarkBankUpdate|BenchmarkServiceTick' -benchmem -run '^$$' ./internal/nws

# Headline sweeps (candidate evaluation + NWS bank update) as machine-
# readable JSON, for diffing performance across revisions.
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_sched.json

# Paper-style tables via the experiment driver.
tables:
	$(GO) run ./cmd/expt -quick

clean:
	$(GO) clean ./...
