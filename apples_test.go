package apples_test

import (
	"errors"
	"testing"

	"apples"
)

// TestFacadeEndToEnd drives the whole public surface the way README's
// quickstart does: build the Figure 2 testbed, warm the NWS, schedule with
// an AppLeS agent, and actuate the schedule.
func TestFacadeEndToEnd(t *testing.T) {
	eng := apples.NewEngine()
	tp := apples.SDSCPCL(eng, apples.TestbedOptions{Seed: 42})

	svc := apples.NewNWS(eng, 10)
	svc.WatchTopology(tp)
	if err := eng.RunUntil(600); err != nil {
		t.Fatal(err)
	}

	tpl := apples.JacobiTemplate(1000, 25)
	agent, err := apples.NewAgent(tp, tpl, &apples.UserSpec{Decomposition: "strip"},
		apples.NWSInformation(svc, tp))
	if err != nil {
		t.Fatal(err)
	}
	sched, measured, err := agent.Run(1000, apples.JacobiActuator(tp, apples.JacobiConfig{Iterations: 25}))
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Placement.Validate(); err != nil {
		t.Fatal(err)
	}
	if measured <= 0 {
		t.Fatalf("measured %v", measured)
	}
}

func TestFacadeBaselinePartitions(t *testing.T) {
	eng := apples.NewEngine()
	tp := apples.SDSCPCL(eng, apples.TestbedOptions{Seed: 1, Quiet: true})
	hosts := tp.HostNames()

	if p, err := apples.UniformStrip(400, hosts, 8); err != nil || p.TotalPoints() != 160000 {
		t.Fatalf("uniform strip: %v %v", p, err)
	}
	weights := make([]float64, len(hosts))
	for i, h := range hosts {
		weights[i] = tp.Host(h).Speed
	}
	if p, err := apples.WeightedStrip(400, hosts, weights, 8); err != nil || p.TotalPoints() != 160000 {
		t.Fatalf("weighted strip: %v %v", p, err)
	}
	if p, err := apples.BlockedPartition(400, hosts, 8); err != nil || p.TotalPoints() != 160000 {
		t.Fatalf("blocked: %v %v", p, err)
	}
}

func TestFacadeReact(t *testing.T) {
	eng := apples.NewEngine()
	tp := apples.CASA(eng)
	tpl := apples.ReactTemplate(120)
	prod, cons, unit, pred, err := apples.ChooseReactMapping(tp, tpl, "c90", "paragon", apples.ReactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prod != "c90" || cons != "paragon" || unit < 5 || unit > 20 || pred <= 0 {
		t.Fatalf("mapping %s->%s unit=%d pred=%v", prod, cons, unit, pred)
	}
	res, err := apples.RunReactPipeline(tp, tpl, prod, cons, unit, apples.ReactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatalf("pipeline time %v", res.Time)
	}
}

func TestFacadeExplainAndBlockCyclic(t *testing.T) {
	eng := apples.NewEngine()
	tp := apples.SDSCPCL(eng, apples.TestbedOptions{Seed: 3, Quiet: true})
	agent, err := apples.NewAgent(tp, apples.JacobiTemplate(600, 10),
		&apples.UserSpec{}, apples.OracleInformation(tp))
	if err != nil {
		t.Fatal(err)
	}
	best, top, err := agent.ScheduleExplained(600, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 || best == nil {
		t.Fatalf("explained: best=%v top=%d", best, len(top))
	}

	p, err := apples.BlockCyclicPartition(120, tp.HostNames(), 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := apples.RunJacobi(tp, p, apples.JacobiConfig{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatalf("block-cyclic run time %v", res.Time)
	}
}

// TestFacadeAgentOptionsAndErrors covers the functional-options surface
// and typed sentinel errors as re-exported by the facade.
func TestFacadeAgentOptionsAndErrors(t *testing.T) {
	eng := apples.NewEngine()
	tp := apples.SDSCPCL(eng, apples.TestbedOptions{Seed: 5, Quiet: true})

	seq, err := apples.NewAgent(tp, apples.JacobiTemplate(600, 10), &apples.UserSpec{},
		apples.OracleInformation(tp),
		apples.WithParallelism(1), apples.WithInfoSnapshot(false))
	if err != nil {
		t.Fatal(err)
	}
	par, err := apples.NewAgent(tp, apples.JacobiTemplate(600, 10), &apples.UserSpec{},
		apples.OracleInformation(tp),
		apples.WithParallelism(4), apples.WithPruning(true), apples.WithSpillFactor(30))
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.Schedule(600)
	if err != nil {
		t.Fatal(err)
	}
	// Match spill factors so only the evaluation mode differs.
	seq.SpillFactor = 30
	want, err := seq.Schedule(600)
	if err != nil {
		t.Fatal(err)
	}
	if got.PredictedTotal != want.PredictedTotal {
		t.Fatalf("parallel+pruned %v != sequential %v", got.PredictedTotal, want.PredictedTotal)
	}

	// Candidates accessor on the facade alias.
	top, err := par.Candidates(600, 2)
	if err != nil || len(top) != 2 {
		t.Fatalf("Candidates: %v %v", top, err)
	}

	// Typed errors flow through the facade.
	blocked, err := apples.NewAgent(tp, apples.JacobiTemplate(600, 10),
		&apples.UserSpec{Accessible: []string{"nope"}}, apples.OracleInformation(tp))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := blocked.Schedule(600); !errors.Is(err, apples.ErrNoFeasibleHosts) {
		t.Fatalf("want ErrNoFeasibleHosts, got %v", err)
	}
	if _, err := apples.NewAgent(tp, apples.ReactTemplate(100), &apples.UserSpec{},
		apples.OracleInformation(tp)); !errors.Is(err, apples.ErrBadTemplate) {
		t.Fatalf("want ErrBadTemplate, got %v", err)
	}
}

func TestFacadeRMS(t *testing.T) {
	eng := apples.NewEngine()
	tp := apples.SDSCPCL(eng, apples.TestbedOptions{Seed: 4, Quiet: true})
	total, err := apples.RunRing(tp, []string{"alpha1", "alpha2", "alpha3"}, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Fatalf("ring time %v", total)
	}
}

func TestFacadeNile(t *testing.T) {
	eng := apples.NewEngine()
	tp := apples.SDSCPCL(eng, apples.TestbedOptions{Seed: 2})
	if err := eng.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	job, err := apples.NileJobFromTemplate(apples.NileTemplate(10000), "alpha2", 3)
	if err != nil {
		t.Fatal(err)
	}
	ds := apples.NileDataset{Name: "roar", Site: "alpha1", Events: 10000, RecordBytes: 20480}
	res, err := apples.RunNile(tp, ds, job, apples.NileSkim)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.Strategy != apples.NileSkim {
		t.Fatalf("nile result %+v", res)
	}
}
