package apples_test

// Benchmark harness: one benchmark per paper table/figure plus the
// DESIGN.md ablations. Each benchmark regenerates its experiment end to
// end (testbed construction, NWS warmup, scheduling, simulated execution)
// and reports the reproduced headline numbers as custom metrics, so
// `go test -bench=. -benchmem` doubles as the reproduction driver.
// cmd/expt prints the same experiments as full paper-style tables.

import (
	"testing"

	"apples/internal/core"
	"apples/internal/expt"
)

// BenchmarkEvaluate sweeps the candidate-evaluation engine across pool
// sizes and evaluation modes on warmed NWS-backed cluster-of-clusters
// scenarios. The 8- and 12-host pools enumerate every subset (255 and
// 4095 candidate sets); 32 and 64 hosts use desirability prefixes.
// "sequential" is the legacy loop (no snapshot, one worker, re-querying
// the information source per set); "snapshot" resolves the pool once;
// "parallel" adds the worker pool; "pruned" adds best-so-far pruning.
func BenchmarkEvaluate(b *testing.B) {
	pools := []struct {
		name          string
		clusters, per int
	}{
		{"8host", 2, 4},
		{"12host", 3, 4},
		{"32host", 8, 4},
		{"64host", 8, 8},
	}
	modes := []struct {
		name string
		opts []core.AgentOption
	}{
		{"sequential", []core.AgentOption{core.WithParallelism(1), core.WithInfoSnapshot(false)}},
		{"snapshot", []core.AgentOption{core.WithParallelism(1)}},
		{"parallel", []core.AgentOption{core.WithParallelism(4)}},
		{"pruned", []core.AgentOption{core.WithParallelism(4), core.WithPruning(true)}},
	}
	const n = 2000
	for _, p := range pools {
		for _, m := range modes {
			b.Run(p.name+"/"+m.name, func(b *testing.B) {
				agent, err := expt.NewScaleAgent(p.clusters, p.per, n, 11, m.opts...)
				if err != nil {
					b.Fatal(err)
				}
				var considered int
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sched, err := agent.Schedule(n)
					if err != nil {
						b.Fatal(err)
					}
					considered = sched.CandidatesConsidered
				}
				b.ReportMetric(float64(considered), "candidate_sets")
			})
		}
	}
}

// BenchmarkSelect sweeps the selector families across grid-scale pools
// — the "past the 2^n wall" benchmark. Each iteration is one full
// scheduling round (snapshot, selection, plan/estimate, reduce) on a
// dedicated oracle-informed cluster-of-clusters. The exhaustive
// selector's large-pool fallback enumerates one prefix per pool size
// (O(pool²) evaluation cost), so it is skipped at 2048 hosts where a
// single round takes seconds.
func BenchmarkSelect(b *testing.B) {
	pools := []struct {
		name          string
		clusters, per int
	}{
		{"128host", 8, 16},
		{"512host", 32, 16},
		{"2048host", 128, 16},
	}
	selectors := []struct {
		name string
		spec core.SelectorSpec
	}{
		{"exhaustive", core.SelectorSpec{Kind: core.SelectorExhaustive}},
		{"greedy", core.SelectorSpec{Kind: core.SelectorGreedy}},
		{"beam", core.SelectorSpec{Kind: core.SelectorBeam, BeamWidth: 8}},
		{"lpga", core.SelectorSpec{Kind: core.SelectorLPGA, Seed: 1}},
	}
	const n = 4000
	for _, p := range pools {
		for _, s := range selectors {
			b.Run(p.name+"/"+s.name, func(b *testing.B) {
				if p.name == "2048host" && s.name == "exhaustive" {
					b.Skip("prefix fallback is O(pool²) per round at this size")
				}
				agent, err := expt.NewGridAgent(p.clusters, p.per, n, 7, core.WithSelector(s.spec))
				if err != nil {
					b.Fatal(err)
				}
				var considered int
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sched, err := agent.Schedule(n)
					if err != nil {
						b.Fatal(err)
					}
					considered = sched.CandidatesConsidered
				}
				b.ReportMetric(float64(considered), "candidate_sets")
			})
		}
	}
}

// BenchmarkResched measures the delta-aware rescheduling session
// against the full per-tick blueprint round it replaces — the kHz-rate
// loop of a long-running application re-asking "is my placement still
// right?" every simulated second. "full" rebuilds snapshot + selection
// + plan/estimate per tick (the old Rescheduler path); "cold" pays
// session construction plus a first full round each iteration;
// "delta1" perturbs one host's availability through a live overlay
// between ticks, so the session re-plans only the candidate sets that
// host touches; "nodelta" is the quiescent steady state, which must
// run allocation-free (gated by TestSessionSteadyStateAllocFree). The
// 512-host variant drives the chunked-bitmask/lazy-link path under the
// greedy selector.
func BenchmarkResched(b *testing.B) {
	const n = 2000
	b.Run("12host/full", func(b *testing.B) {
		agent, _, err := expt.NewReschedScenario(3, 4, n, 11)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := agent.Schedule(n); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("12host/cold", func(b *testing.B) {
		agent, _, err := expt.NewReschedScenario(3, 4, n, 11)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sess, err := agent.NewReschedSession(n)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := sess.Round(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("12host/delta1", func(b *testing.B) {
		agent, overlay, err := expt.NewReschedScenario(3, 4, n, 11)
		if err != nil {
			b.Fatal(err)
		}
		sess, err := agent.NewReschedSession(n)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sess.Round(); err != nil {
			b.Fatal(err)
		}
		host := sess.Pool()[0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			overlay[host] = 0.3 + 0.1*float64(i%2)
			if _, _, err := sess.Round(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("12host/nodelta", func(b *testing.B) {
		agent, _, err := expt.NewReschedScenario(3, 4, n, 11)
		if err != nil {
			b.Fatal(err)
		}
		sess, err := agent.NewReschedSession(n)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sess.Round(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := sess.Round(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("512host/greedy-delta1", func(b *testing.B) {
		agent, overlay, err := expt.NewGridReschedScenario(32, 16, 4000, 7,
			core.WithSelector(core.SelectorSpec{Kind: core.SelectorGreedy}))
		if err != nil {
			b.Fatal(err)
		}
		sess, err := agent.NewReschedSession(4000)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sess.Round(); err != nil {
			b.Fatal(err)
		}
		host := sess.Pool()[0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			overlay[host] = 0.3 + 0.1*float64(i%2)
			if _, _, err := sess.Round(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkService measures the multi-tenant scheduling daemon: 64
// registered agents sharing one information source and one 12-host
// pool, rounds submitted round-robin through the service's admission
// queue. Every round after the first reuses the copy-on-write snapshot
// (shared-ratio approaches 1), so the cost per round is queue dispatch
// plus selection and planning over the frozen view. The greedy
// selector is the serving headline; the exhaustive variant prices the
// same pipeline under 4095-set enumeration for contrast.
func BenchmarkService(b *testing.B) {
	const n = 600
	run := func(name string, opts ...core.AgentOption) {
		b.Run(name, func(b *testing.B) {
			sched, clients, err := expt.NewServiceScenario(64, 3, 4, n, 11, opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer sched.Close()
			// One round per tenant first, so tenant-side lazy setup is
			// out of the timed region.
			for _, c := range clients {
				if _, err := c.Schedule(n); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := clients[i%len(clients)].Schedule(n); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
			b.ReportMetric(sched.SharedRatio(), "shared-ratio")
		})
	}
	run("64tenant/12host/greedy", core.WithSelector(core.SelectorSpec{Kind: core.SelectorGreedy}))
	run("64tenant/12host/exhaustive")
}

// BenchmarkPipelineEvaluate sweeps the pipeline blueprint's evaluation
// across pool sizes and worker-pool widths on the same warmed
// cluster-of-clusters scenarios as BenchmarkEvaluate. A pool of h hosts
// enumerates h + h·(h−1) mappings (singles plus ordered pairs), each
// parameterizing the analytic pipeline model and tuning the transfer
// unit; since the shared Coordinator fans mappings across the worker pool
// with a deterministic (score, index) reduce, "parallel4" must pick the
// identical mapping to "sequential" while finishing >1.5x sooner.
func BenchmarkPipelineEvaluate(b *testing.B) {
	pools := []struct {
		name          string
		clusters, per int
	}{
		{"8host", 2, 4},
		{"12host", 3, 4},
		{"32host", 8, 4},
		{"64host", 8, 8},
	}
	modes := []struct {
		name string
		opts []core.AgentOption
	}{
		{"sequential", []core.AgentOption{core.WithParallelism(1)}},
		{"parallel4", []core.AgentOption{core.WithParallelism(4)}},
		{"parallel", []core.AgentOption{core.WithParallelism(0)}},
	}
	const surfaceFunctions = 600
	for _, p := range pools {
		for _, m := range modes {
			b.Run(p.name+"/"+m.name, func(b *testing.B) {
				agent, err := expt.NewScalePipelineAgent(p.clusters, p.per, surfaceFunctions, 11, m.opts...)
				if err != nil {
					b.Fatal(err)
				}
				var mappings int
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sched, err := agent.Schedule()
					if err != nil {
						b.Fatal(err)
					}
					mappings = sched.CandidatesConsidered
				}
				b.ReportMetric(float64(mappings), "mappings")
			})
		}
	}
}

// BenchmarkFig3ApplesPartition regenerates Figure 3: the AppLeS partition
// of Jacobi2D on the loaded SDSC/PCL network.
func BenchmarkFig3ApplesPartition(b *testing.B) {
	b.ReportAllocs()
	var hosts int
	for i := 0; i < b.N; i++ {
		res, err := expt.Fig3(2000, 11)
		if err != nil {
			b.Fatal(err)
		}
		hosts = len(res.Hosts)
	}
	b.ReportMetric(float64(hosts), "hosts_used")
}

// BenchmarkFig4NonuniformStrip regenerates Figure 4: the compile-time
// speed-weighted strip partition.
func BenchmarkFig4NonuniformStrip(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig4(2000, 11); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5JacobiComparison regenerates Figure 5: AppLeS vs static
// Strip vs HPF Blocked execution times (reduced sweep; cmd/expt runs the
// full one). The reported metrics are the mean speedups over the sweep —
// the paper's headline is 2-8x.
func BenchmarkFig5JacobiComparison(b *testing.B) {
	var vsStrip, vsBlocked float64
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig5(expt.Fig5Config{
			Sizes: []int{1000, 2000}, Trials: 1, Iterations: 50, Seed: 17,
		})
		if err != nil {
			b.Fatal(err)
		}
		vsStrip, vsBlocked = 0, 0
		for _, r := range rows {
			vsStrip += r.SpeedupVsStrip() / float64(len(rows))
			vsBlocked += r.SpeedupVsBlocked() / float64(len(rows))
		}
	}
	b.ReportMetric(vsStrip, "speedup_vs_strip")
	b.ReportMetric(vsBlocked, "speedup_vs_blocked")
}

// BenchmarkFig6MemoryAware regenerates Figure 6: AppLeS vs SP-2-only
// Blocked around the ~3700^2 memory crossover.
func BenchmarkFig6MemoryAware(b *testing.B) {
	var collapse float64
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig6(expt.Fig6Config{
			Sizes: []int{3200, 4000}, Trials: 1, Iterations: 20, Seed: 23,
		})
		if err != nil {
			b.Fatal(err)
		}
		collapse = rows[1].BlockedSP2 / rows[1].AppLeS
	}
	b.ReportMetric(collapse, "post_spill_blocked_over_apples")
}

// BenchmarkReactPipeline regenerates the Section 2.3 numbers: >16 h
// single-site, <5 h distributed, pipeline-unit sweep.
func BenchmarkReactPipeline(b *testing.B) {
	var single, dist float64
	for i := 0; i < b.N; i++ {
		res, err := expt.React(600)
		if err != nil {
			b.Fatal(err)
		}
		single, dist = res.SingleC90Hours, res.DistributedHours
	}
	b.ReportMetric(single, "single_site_hours")
	b.ReportMetric(dist, "distributed_hours")
}

// BenchmarkNileSkimDecision regenerates the Section 2.1 site-manager
// decision curve: skim vs remote access vs compute-at-data.
func BenchmarkNileSkimDecision(b *testing.B) {
	var crossover float64
	for i := 0; i < b.N; i++ {
		res, err := expt.Nile(30000, 6, 31)
		if err != nil {
			b.Fatal(err)
		}
		crossover = float64(res.SkimCrossover)
	}
	b.ReportMetric(crossover, "skim_crossover_passes")
}

// BenchmarkAblationForecast regenerates ablation A1: oracle vs NWS vs
// static information sources.
func BenchmarkAblationForecast(b *testing.B) {
	var staticOverNWS float64
	for i := 0; i < b.N; i++ {
		rows, err := expt.AblationForecast([]int{1500}, 1, 41)
		if err != nil {
			b.Fatal(err)
		}
		staticOverNWS = rows[0].Static / rows[0].NWS
	}
	b.ReportMetric(staticOverNWS, "static_over_nws")
}

// BenchmarkAblationRisk regenerates ablation A4: risk posture sweep.
func BenchmarkAblationRisk(b *testing.B) {
	var hostsShrink float64
	for i := 0; i < b.N; i++ {
		rows, err := expt.AblationRisk(1000, []float64{0, 2}, []int64{101, 202})
		if err != nil {
			b.Fatal(err)
		}
		hostsShrink = rows[0].MeanHosts - rows[1].MeanHosts
	}
	b.ReportMetric(hostsShrink, "hosts_dropped_at_k2")
}

// BenchmarkMultiApp regenerates the Section 3 uncoordinated-agents
// interference experiment.
func BenchmarkMultiApp(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		res, err := expt.MultiApp(1000, 60, 61)
		if err != nil {
			b.Fatal(err)
		}
		slowdown = res.SlowdownA()
	}
	b.ReportMetric(slowdown, "mutual_slowdown")
}

// BenchmarkAdaptation regenerates the Section 3.2 redistribution
// experiment: a mid-run load shift on the Alpha farm, static vs adaptive
// AppLeS.
func BenchmarkAdaptation(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := expt.Adaptation(1500, 200, 11)
		if err != nil {
			b.Fatal(err)
		}
		speedup = res.Rows[0].Time / res.Rows[1].Time
	}
	b.ReportMetric(speedup, "adaptive_speedup")
}

// BenchmarkAblationSelection regenerates ablation A3: resource-selection
// search budget vs schedule quality.
func BenchmarkAblationSelection(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := expt.AblationSelection(1500, []int{0, 4}, 43)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[1].Measured / rows[0].Measured
	}
	b.ReportMetric(ratio, "budget4_over_exhaustive")
}
